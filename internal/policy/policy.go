// Package policy implements the migration strategies the ElMem paper
// compares (Section V-B4):
//
//   - Baseline: scale immediately with no migration (cold cache).
//   - Naive: migrate the top (n−x)/n fraction of items off the retiring
//     nodes, assuming per-node hotness distributions are interchangeable —
//     uncoordinated imports can evict hotter items on the receivers.
//   - CacheScale: no pre-migration; after the flip the retiring nodes form
//     a secondary cache consulted on primary misses, with hits migrated to
//     the primary, until the secondary is discarded (~2 minutes).
//   - ElMem: the paper's three-phase FuseCache migration, implemented by
//     core.Master; this package only names it.
package policy

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/agent"
	"repro/internal/hashring"
)

// Kind selects a migration policy.
type Kind int

// The four policies of Section V.
const (
	Baseline Kind = iota + 1
	Naive
	CacheScale
	ElMem
)

var kindNames = map[Kind]string{
	Baseline:   "baseline",
	Naive:      "naive",
	CacheScale: "cachescale",
	ElMem:      "elmem",
}

// String returns the policy's canonical name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a policy name.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown policy %q", s)
}

// All returns the four policies in comparison order.
func All() []Kind { return []Kind{Baseline, Naive, CacheScale, ElMem} }

// ErrBadRequest reports invalid migration parameters.
var ErrBadRequest = errors.New("policy: invalid migration request")

// PickRandomRetiring chooses x random members to retire — the node choice
// the paper attributes to typical autoscalers (Section V-B3's comparison
// point for Fig 7).
func PickRandomRetiring(rng *rand.Rand, members []string, x int) ([]string, error) {
	if x < 1 || x >= len(members) {
		return nil, fmt.Errorf("%w: retire %d of %d", ErrBadRequest, x, len(members))
	}
	perm := rng.Perm(len(members))
	out := make([]string, x)
	for i := 0; i < x; i++ {
		out[i] = members[perm[i]]
	}
	sort.Strings(out)
	return out, nil
}

// NaiveScaleIn migrates the top fraction of every retiring node's items to
// their hash targets among the retained nodes. fraction is typically
// (n−x)/n for a scale-in of x out of n nodes. Items are pushed with
// ImportData, so on a full receiver they evict the receiver's MRU tail —
// even when that tail is hotter, which is exactly Naive's flaw. Returns
// the number of migrated items.
func NaiveScaleIn(ctx context.Context, reg *agent.Registry, retiring, retained []string, fraction float64) (int, error) {
	if fraction < 0 || fraction > 1 {
		return 0, fmt.Errorf("%w: fraction %v", ErrBadRequest, fraction)
	}
	if len(retained) == 0 {
		return 0, fmt.Errorf("%w: no retained nodes", ErrBadRequest)
	}
	ring, err := hashring.New(retained)
	if err != nil {
		return 0, err
	}
	migrated := 0
	for _, node := range retiring {
		if err := ctx.Err(); err != nil {
			return migrated, err
		}
		src, err := reg.Get(node)
		if err != nil {
			return migrated, fmt.Errorf("naive: %w", err)
		}
		cc := src.Cache()
		// Per target, collect the head fraction of every class.
		perTarget := make(map[string][]struct {
			classID int
			count   int
		})
		for _, classID := range cc.PopulatedClasses() {
			take := int(float64(cc.ClassLen(classID)) * fraction)
			if take == 0 {
				continue
			}
			kvs, err := cc.FetchTop(classID, take, nil)
			if err != nil {
				return migrated, err
			}
			// Group consecutive by owner, preserving MRU order per target.
			byOwner := make(map[string]int)
			for _, kv := range kvs {
				owner, err := ring.Get(kv.Key)
				if err != nil {
					continue
				}
				byOwner[owner]++
			}
			for owner, count := range byOwner {
				perTarget[owner] = append(perTarget[owner], struct {
					classID int
					count   int
				}{classID: classID, count: count})
			}
		}
		targets := make([]string, 0, len(perTarget))
		for tgt := range perTarget {
			targets = append(targets, tgt)
		}
		sort.Strings(targets)
		for _, tgt := range targets {
			takes := make(map[int]int, len(perTarget[tgt]))
			for _, tc := range perTarget[tgt] {
				takes[tc.classID] = tc.count
			}
			stats, err := src.SendData(ctx, tgt, takes, retained)
			if err != nil {
				return migrated, fmt.Errorf("naive %s→%s: %w", node, tgt, err)
			}
			migrated += stats.Pairs
		}
	}
	return migrated, nil
}

// Secondary models CacheScale's transition state: after the membership
// flip, the retiring nodes serve as a secondary cache for misses until the
// deadline passes.
type Secondary struct {
	// Ring routes keys over the retiring (secondary) nodes.
	Ring *hashring.Ring
	// Nodes lists the secondary members.
	Nodes []string
	// Deadline is when the secondary is discarded.
	Deadline time.Time
}

// NewSecondary builds the CacheScale secondary over the retiring nodes.
func NewSecondary(retiring []string, deadline time.Time) (*Secondary, error) {
	if len(retiring) == 0 {
		return nil, fmt.Errorf("%w: empty secondary", ErrBadRequest)
	}
	ring, err := hashring.New(retiring)
	if err != nil {
		return nil, err
	}
	return &Secondary{
		Ring:     ring,
		Nodes:    append([]string(nil), retiring...),
		Deadline: deadline,
	}, nil
}

// Active reports whether the secondary still serves at time t.
func (s *Secondary) Active(t time.Time) bool {
	return s != nil && t.Before(s.Deadline)
}

// Lookup tries a key in the secondary at time t: on hit it returns the
// value and removes the item from the secondary node (the caller migrates
// it to the primary), implementing CacheScale's demand-driven migration.
func (s *Secondary) Lookup(reg *agent.Registry, key string, t time.Time) ([]byte, bool) {
	if !s.Active(t) {
		return nil, false
	}
	owner, err := s.Ring.Get(key)
	if err != nil {
		return nil, false
	}
	ag, err := reg.Get(owner)
	if err != nil {
		return nil, false
	}
	value, ok := ag.Cache().Peek(key)
	if !ok {
		return nil, false
	}
	_ = ag.Cache().Delete(key)
	return value, true
}
