package store

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/workload"
)

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(0); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig for empty dataset")
	}
	if _, err := NewDataset(10, WithPareto(0, 0)); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig for zero scale")
	}
	if _, err := NewDataset(10, WithSizeBounds(10, 5)); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig for inverted bounds")
	}
}

func TestRankOf(t *testing.T) {
	d, err := NewDataset(1000)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		key     string
		want    uint64
		wantErr bool
	}{
		{key: "k0000000000", want: 0},
		{key: "k0000000999", want: 999},
		{key: "k0000001000", wantErr: true}, // out of range
		{key: "x0000000001", wantErr: true}, // bad prefix
		{key: "k", wantErr: true},
		{key: "kabc", wantErr: true},
		{key: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := d.RankOf(tt.key)
		if tt.wantErr {
			if !errors.Is(err, ErrUnknownKey) {
				t.Errorf("RankOf(%q) err = %v, want ErrUnknownKey", tt.key, err)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("RankOf(%q) = %d, %v; want %d", tt.key, got, err, tt.want)
		}
	}
}

func TestRankOfRoundTrip(t *testing.T) {
	d, err := NewDataset(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rank uint64) bool {
		rank %= 1 << 30
		got, err := d.RankOf(workload.KeyName(rank))
		return err == nil && got == rank
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueDeterministic(t *testing.T) {
	d, err := NewDataset(100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Value("k0000000042")
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Value("k0000000042")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("value not deterministic")
	}
	if len(a) != d.SizeOf(42) {
		t.Fatalf("value length %d, want SizeOf = %d", len(a), d.SizeOf(42))
	}
	c, err := d.Value("k0000000043")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) && len(a) == len(c) {
		t.Fatal("adjacent ranks produced identical values")
	}
}

func TestValueUnknownKey(t *testing.T) {
	d, err := NewDataset(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Value("k0000000099"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v, want ErrUnknownKey", err)
	}
}

func TestTotalBytesScale(t *testing.T) {
	d, err := NewDataset(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	total := d.TotalBytes()
	// Mean size ≈ 329 bytes (clamped tail shrinks it); expect the estimate
	// within a loose band around mean × n.
	if total < 100_000_000 || total > 500_000_000 {
		t.Fatalf("TotalBytes = %d, outside plausible band", total)
	}
}

func TestLatencyModelValidate(t *testing.T) {
	good := LatencyModel{Base: time.Millisecond, Capacity: 40000, Max: 2 * time.Second}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LatencyModel{
		{Base: 0, Capacity: 1, Max: time.Second},
		{Base: time.Millisecond, Capacity: 0, Max: time.Second},
		{Base: time.Second, Capacity: 1, Max: time.Millisecond},
	}
	for i, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("model %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestLatencyModelKnee(t *testing.T) {
	m := LatencyModel{Base: time.Millisecond, Capacity: 40000, Max: 2 * time.Second}
	idle := m.LatencyAt(0)
	if idle != time.Millisecond {
		t.Fatalf("idle latency %v, want base", idle)
	}
	half := m.LatencyAt(20000)
	if half < time.Millisecond || half > 3*time.Millisecond {
		t.Fatalf("latency at 50%% load = %v, want ~2x base", half)
	}
	near := m.LatencyAt(39500)
	if near < 50*time.Millisecond {
		t.Fatalf("latency near capacity = %v, want sharp rise", near)
	}
	over := m.LatencyAt(50000)
	if over != 2*time.Second {
		t.Fatalf("saturated latency = %v, want clamp at max", over)
	}
	// Monotonicity across the range.
	prev := time.Duration(0)
	for rate := 0.0; rate <= 60000; rate += 500 {
		lat := m.LatencyAt(rate)
		if lat < prev {
			t.Fatalf("latency not monotone at rate %v", rate)
		}
		prev = lat
	}
}

// manualClock advances only when told, for rate-window tests.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestDB(t *testing.T, capacity float64) (*DB, *manualClock) {
	t.Helper()
	d, err := NewDataset(10000)
	if err != nil {
		t.Fatal(err)
	}
	clk := &manualClock{t: time.Unix(1_700_000_000, 0)}
	db, err := NewDB(d, LatencyModel{
		Base:     time.Millisecond,
		Capacity: capacity,
		Max:      2 * time.Second,
	}, WithClock(clk.Now))
	if err != nil {
		t.Fatal(err)
	}
	return db, clk
}

func TestNewDBValidation(t *testing.T) {
	if _, err := NewDB(nil, LatencyModel{Base: 1, Capacity: 1, Max: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig for nil dataset")
	}
	d, err := NewDataset(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDB(d, LatencyModel{}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig for zero model")
	}
}

func TestDBGetLowLoad(t *testing.T) {
	db, clk := newTestDB(t, 40000)
	var lastLat time.Duration
	for i := 0; i < 10; i++ {
		clk.Advance(100 * time.Millisecond) // 10 req/s
		_, lat, err := db.Get("k0000000001")
		if err != nil {
			t.Fatal(err)
		}
		lastLat = lat
	}
	if lastLat > 2*time.Millisecond {
		t.Fatalf("low-load latency %v, want near base", lastLat)
	}
	if db.Reads() != 10 {
		t.Fatalf("Reads = %d, want 10", db.Reads())
	}
}

func TestDBGetSaturates(t *testing.T) {
	db, clk := newTestDB(t, 100) // tiny capacity
	var lat time.Duration
	for i := 0; i < 500; i++ {
		clk.Advance(time.Millisecond) // 1000 req/s >> capacity 100
		_, l, err := db.Get("k0000000001")
		if err != nil {
			t.Fatal(err)
		}
		lat = l
	}
	if lat != 2*time.Second {
		t.Fatalf("overloaded latency %v, want max clamp", lat)
	}
	if db.Rate() < 100 {
		t.Fatalf("rate estimate %v too low", db.Rate())
	}
}

func TestDBRateWindowDecays(t *testing.T) {
	db, clk := newTestDB(t, 40000)
	for i := 0; i < 100; i++ {
		clk.Advance(time.Millisecond)
		if _, _, err := db.Get("k0000000001"); err != nil {
			t.Fatal(err)
		}
	}
	burst := db.Rate()
	if burst < 90 {
		t.Fatalf("burst rate %v, want ≈100 arrivals in window", burst)
	}
	// After 2 idle seconds the window must have rolled off.
	clk.Advance(2 * time.Second)
	_, _, err := db.Get("k0000000001")
	if err != nil {
		t.Fatal(err)
	}
	if after := db.Rate(); after > 5 {
		t.Fatalf("stale window: rate %v after idle gap", after)
	}
}

func TestDBGetUnknownKey(t *testing.T) {
	db, _ := newTestDB(t, 40000)
	if _, _, err := db.Get("bogus"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v, want ErrUnknownKey", err)
	}
}

func TestDBCapacityAndDataset(t *testing.T) {
	db, _ := newTestDB(t, 40000)
	if db.Capacity() != 40000 {
		t.Fatalf("Capacity = %v, want 40000", db.Capacity())
	}
	if db.Dataset().Len() != 10000 {
		t.Fatalf("dataset len = %d, want 10000", db.Dataset().Len())
	}
}

func TestDBConcurrentGets(t *testing.T) {
	db, _ := newTestDB(t, 40000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, _, err := db.Get("k0000000005"); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if db.Reads() != 1600 {
		t.Fatalf("Reads = %d, want 1600", db.Reads())
	}
}
