// Package store models the persistent database tier behind the cache
// (Section V-A): an ardb/RocksDB-style KV store holding the full dataset,
// whose latency is low until the offered load approaches its capacity
// r_DB, past which latency "rises abruptly" — the knee the paper profiles
// at ~40,000 req/s and feeds into Eq. (1).
//
// The dataset is deterministic: every key's value is synthesized from its
// rank, so no gigabytes are resident, yet both the real-TCP testbed and
// the simulator see identical, stable data.
package store

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/workload"
)

var (
	// ErrUnknownKey is returned for keys outside the dataset.
	ErrUnknownKey = errors.New("store: key not in dataset")
	// ErrBadConfig is returned for invalid construction parameters.
	ErrBadConfig = errors.New("store: invalid configuration")
)

// Dataset is the deterministic backing dataset: keys k0000000000 …
// k<n-1>, with Generalized-Pareto value sizes (Section V-A2's ~19M pairs,
// ~6 GB — scaled down in tests).
type Dataset struct {
	n     uint64
	scale float64
	shape float64
	min   int
	max   int
}

// DatasetOption configures a Dataset.
type DatasetOption interface {
	apply(*datasetOptions)
}

type datasetOptions struct {
	scale, shape float64
	min, max     int
}

type datasetPareto struct{ scale, shape float64 }

func (o datasetPareto) apply(opts *datasetOptions) { opts.scale, opts.shape = o.scale, o.shape }

// WithPareto overrides the value-size distribution parameters.
func WithPareto(scale, shape float64) DatasetOption { return datasetPareto{scale: scale, shape: shape} }

type datasetBounds struct{ min, max int }

func (o datasetBounds) apply(opts *datasetOptions) { opts.min, opts.max = o.min, o.max }

// WithSizeBounds clamps value sizes to [min, max] bytes.
func WithSizeBounds(minSize, maxSize int) DatasetOption {
	return datasetBounds{min: minSize, max: maxSize}
}

// NewDataset creates a dataset of n keys.
func NewDataset(n uint64, opts ...DatasetOption) (*Dataset, error) {
	if n == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrBadConfig)
	}
	options := datasetOptions{
		scale: workload.DefaultParetoScale,
		shape: workload.DefaultParetoShape,
		min:   workload.DefaultMinValueSize,
		max:   workload.DefaultMaxValueSize,
	}
	for _, o := range opts {
		o.apply(&options)
	}
	if options.scale <= 0 || options.min < 1 || options.max < options.min {
		return nil, fmt.Errorf("%w: pareto(%v) bounds [%d, %d]", ErrBadConfig,
			options.scale, options.min, options.max)
	}
	return &Dataset{
		n:     n,
		scale: options.scale,
		shape: options.shape,
		min:   options.min,
		max:   options.max,
	}, nil
}

// Len returns the number of keys in the dataset.
func (d *Dataset) Len() uint64 { return d.n }

// RankOf parses the rank from a canonical key name. A tenant namespace
// prefix ("tenant/k00042") is ignored: the simulated database is
// namespace-agnostic, every tenant reads the same backing records.
func (d *Dataset) RankOf(key string) (uint64, error) {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		key = key[i+1:]
	}
	if len(key) < 2 || key[0] != 'k' {
		return 0, fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	digits := strings.TrimLeft(key[1:], "0")
	if digits == "" {
		digits = "0"
	}
	rank, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	if rank >= d.n {
		return 0, fmt.Errorf("%w: %q (rank %d >= %d)", ErrUnknownKey, key, rank, d.n)
	}
	return rank, nil
}

// Contains reports whether the key belongs to the dataset.
func (d *Dataset) Contains(key string) bool {
	_, err := d.RankOf(key)
	return err == nil
}

// SizeOf returns the value size of a rank.
func (d *Dataset) SizeOf(rank uint64) int {
	return workload.SizeForRank(rank, d.scale, d.shape, d.min, d.max)
}

// Value synthesizes the value bytes for a key: a deterministic xorshift
// stream seeded by the rank, so repeated reads agree byte-for-byte.
func (d *Dataset) Value(key string) ([]byte, error) {
	rank, err := d.RankOf(key)
	if err != nil {
		return nil, err
	}
	size := d.SizeOf(rank)
	out := make([]byte, size)
	x := rank*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := 0; i < size; i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		for j := 0; j < 8 && i+j < size; j++ {
			out[i+j] = byte(x >> (8 * j))
		}
	}
	return out, nil
}

// TotalBytes estimates the dataset footprint by sampling sizes.
func (d *Dataset) TotalBytes() int64 {
	const samples = 4096
	var sum int64
	step := d.n / samples
	if step == 0 {
		step = 1
	}
	count := int64(0)
	for rank := uint64(0); rank < d.n; rank += step {
		sum += int64(d.SizeOf(rank))
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / count * int64(d.n)
}

// LatencyModel maps offered load to database access latency with an
// M/M/1-style knee at Capacity: flat near Base at low load, then rising
// sharply as utilization approaches 1, clamped at Max.
type LatencyModel struct {
	// Base is the unloaded access latency (disk/SSD read path).
	Base time.Duration
	// Capacity is r_DB in requests/second.
	Capacity float64
	// Max clamps the saturated latency.
	Max time.Duration
}

// Validate checks the model parameters.
func (m LatencyModel) Validate() error {
	if m.Base <= 0 || m.Capacity <= 0 || m.Max < m.Base {
		return fmt.Errorf("%w: latency model %+v", ErrBadConfig, m)
	}
	return nil
}

// LatencyAt returns the modeled access latency at the given offered rate.
func (m LatencyModel) LatencyAt(rate float64) time.Duration {
	if rate <= 0 {
		return m.Base
	}
	rho := rate / m.Capacity
	if rho >= 0.999 {
		return m.Max
	}
	lat := time.Duration(float64(m.Base) / (1 - rho))
	if lat > m.Max {
		return m.Max
	}
	return lat
}

// DB is the database tier: a Dataset served through a LatencyModel, with a
// sliding-window arrival-rate estimator driving the modeled latency.
type DB struct {
	dataset *Dataset
	model   LatencyModel
	now     func() time.Time

	mu       sync.Mutex
	buckets  [ratebuckets]int64
	stamps   [ratebuckets]int64 // unix-100ms epoch of each bucket
	reads    uint64
	lastRate float64
}

// ratebuckets is the number of 100 ms buckets in the 1-second rate window.
const ratebuckets = 10

// DBOption configures a DB.
type DBOption interface {
	apply(*dbOptions)
}

type dbOptions struct {
	now func() time.Time
}

type dbClockOption struct{ now func() time.Time }

func (o dbClockOption) apply(opts *dbOptions) { opts.now = o.now }

// WithClock injects the DB's time source (the simulator's virtual clock).
func WithClock(now func() time.Time) DBOption { return dbClockOption{now: now} }

// NewDB creates the database tier.
func NewDB(dataset *Dataset, model LatencyModel, opts ...DBOption) (*DB, error) {
	if dataset == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadConfig)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	options := dbOptions{now: time.Now}
	for _, o := range opts {
		o.apply(&options)
	}
	return &DB{dataset: dataset, model: model, now: options.now}, nil
}

// Get reads a key: it records the arrival, returns the value and the
// modeled latency the read would take at the current load. Callers in the
// real-TCP path sleep for the latency; the simulator adds it to virtual
// time.
func (db *DB) Get(key string) ([]byte, time.Duration, error) {
	rate := db.recordArrival()
	value, err := db.dataset.Value(key)
	if err != nil {
		return nil, 0, err
	}
	return value, db.model.LatencyAt(rate), nil
}

// Rate returns the most recent arrival-rate estimate in req/s.
func (db *DB) Rate() float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lastRate
}

// Reads returns the total reads served.
func (db *DB) Reads() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.reads
}

// Capacity returns r_DB.
func (db *DB) Capacity() float64 { return db.model.Capacity }

// Dataset exposes the backing dataset.
func (db *DB) Dataset() *Dataset { return db.dataset }

// recordArrival bumps the current 100 ms bucket and returns the summed
// 1-second window rate.
func (db *DB) recordArrival() float64 {
	epoch := db.now().UnixNano() / int64(100*time.Millisecond)
	db.mu.Lock()
	defer db.mu.Unlock()
	idx := int(epoch % ratebuckets)
	if db.stamps[idx] != epoch {
		db.stamps[idx] = epoch
		db.buckets[idx] = 0
	}
	db.buckets[idx]++
	db.reads++

	var count int64
	for i := 0; i < ratebuckets; i++ {
		if epoch-db.stamps[i] < ratebuckets {
			count += db.buckets[i]
		}
	}
	db.lastRate = float64(count) // requests in the last ~1 s window
	return db.lastRate
}
