// Package sim is the discrete-event testbed that reproduces the ElMem
// paper's evaluation (Section V) in virtual time: a multi-tier deployment
// of load generator → web tier → Memcached tier → database, replaying the
// paper's demand traces, executing scaling actions under one of the four
// migration policies, and recording the per-second hit-rate and 95%ile-RT
// series of Figures 2, 6, and 8.
//
// Everything real is reused — the caches are cache.Cache instances, the
// migration runs the actual Agent/Master code paths, the policies are the
// real implementations — only the transport and the passage of time are
// simulated. All randomness is seeded; runs are deterministic.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/autoscaler"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hashring"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ErrBadConfig reports invalid simulation parameters.
var ErrBadConfig = errors.New("sim: invalid configuration")

// Config parameterizes one simulation run.
type Config struct {
	// Trace supplies the normalized demand series and scaling actions.
	Trace *trace.Trace
	// Duration compresses the trace to this virtual length (default: the
	// trace's own duration). Action times scale proportionally.
	Duration time.Duration
	// Warmup is extra virtual time before the trace starts, used to fill
	// the caches; it is not recorded.
	Warmup time.Duration
	// Policy selects the migration strategy.
	Policy policy.Kind
	// Nodes is the initial Memcached tier size; it must match the trace's
	// first action FromNodes to reproduce the paper's figures.
	Nodes int
	// NodePages is each node's memory budget in 1 MiB pages.
	NodePages int
	// Keys is the dataset size.
	Keys uint64
	// MaxValueSize bounds value sizes in bytes (default 128). Smaller
	// bounds mean fewer slab classes, which matters at the simulator's
	// scaled-down node sizes: every populated class needs at least one
	// 1 MiB page per node, where a real 4 GB node has 4096 pages covering
	// every class.
	MaxValueSize int
	// ZipfS is the key-popularity skew.
	ZipfS float64
	// PeakRate is the web-request arrival rate (req/s) at normalized
	// demand 1.0.
	PeakRate float64
	// KVPerRequest is the multi-get size per web request (paper: ~10).
	KVPerRequest int
	// CacheHitLatency is one KV fetch from Memcached.
	CacheHitLatency time.Duration
	// DBModel is the database latency/capacity model (r_DB knee).
	DBModel store.LatencyModel
	// MigrationDelay is ElMem/Naive's pre-scaling migration window and
	// CacheScale's secondary lifetime (paper: ~2 minutes).
	MigrationDelay time.Duration
	// Seed drives all randomness.
	Seed int64
	// AutoScale, when set, derives scaling actions from the stack-distance
	// AutoScaler instead of the trace's scripted actions.
	AutoScale *autoscaler.Config
	// AutoScalePeriod is the AutoScaler decision interval (default 60s).
	AutoScalePeriod time.Duration
}

// DefaultConfig returns the calibrated small-scale configuration used by
// the benches: a 10-node tier whose capacity, dataset, and DB knee are the
// paper's testbed scaled down ~20x so a full trace replays in seconds.
func DefaultConfig(tr *trace.Trace) Config {
	return Config{
		Trace:           tr,
		Duration:        8 * time.Minute,
		Warmup:          3 * time.Minute,
		Policy:          policy.ElMem,
		Nodes:           10,
		NodePages:       4,
		Keys:            120_000,
		MaxValueSize:    128,
		ZipfS:           0.99,
		PeakRate:        1200,
		KVPerRequest:    10,
		CacheHitLatency: 500 * time.Microsecond,
		DBModel: store.LatencyModel{
			Base:     1200 * time.Microsecond,
			Capacity: 450,
			Max:      2 * time.Second,
		},
		MigrationDelay: 20 * time.Second,
		Seed:           1,
	}
}

func (c Config) validate() error {
	switch {
	case c.Trace == nil || len(c.Trace.Points) == 0:
		return fmt.Errorf("%w: missing trace", ErrBadConfig)
	case c.Nodes < 2:
		return fmt.Errorf("%w: need >= 2 nodes, got %d", ErrBadConfig, c.Nodes)
	case c.NodePages < 1:
		return fmt.Errorf("%w: NodePages %d", ErrBadConfig, c.NodePages)
	case c.Keys == 0:
		return fmt.Errorf("%w: empty keyspace", ErrBadConfig)
	case c.PeakRate <= 0:
		return fmt.Errorf("%w: PeakRate %v", ErrBadConfig, c.PeakRate)
	case c.KVPerRequest < 1:
		return fmt.Errorf("%w: KVPerRequest %d", ErrBadConfig, c.KVPerRequest)
	case c.CacheHitLatency <= 0:
		return fmt.Errorf("%w: CacheHitLatency %v", ErrBadConfig, c.CacheHitLatency)
	case c.Duration <= 0:
		return fmt.Errorf("%w: Duration %v", ErrBadConfig, c.Duration)
	}
	if err := c.DBModel.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.Policy < policy.Baseline || c.Policy > policy.ElMem {
		return fmt.Errorf("%w: policy %d", ErrBadConfig, int(c.Policy))
	}
	return nil
}

// ExecutedAction records one scaling action as it played out.
type ExecutedAction struct {
	// DecisionAt is when the scaling decision landed (trace time).
	DecisionAt time.Duration
	// ExecutedAt is when the membership flipped.
	ExecutedAt time.Duration
	// FromNodes and ToNodes give tier sizes around the action.
	FromNodes int
	ToNodes   int
	// Retiring / Added name the affected nodes.
	Retiring []string
	Added    []string
	// ItemsMigrated counts KV pairs moved before the flip.
	ItemsMigrated int
}

// Result is one run's output.
type Result struct {
	// Policy echoes the migration policy.
	Policy policy.Kind
	// Series is the per-second hit rate and 95%ile RT (Figures 2/6/8).
	Series []metrics.SecondStat
	// Actions lists the executed scaling actions.
	Actions []ExecutedAction
	// TotalRequests is the number of completed web requests.
	TotalRequests uint64
	// DBReads is the number of database accesses.
	DBReads uint64
	// FinalMembers is the tier membership at the end.
	FinalMembers []string
}

// vclock is the virtual time source all components share. It is
// mutex-guarded because the Master's migration phases fan out across
// goroutines that all stamp durations through this clock.
type vclock struct {
	mu sync.Mutex
	t  time.Time
	// seq breaks MRU-timestamp ties between KV touches at one instant.
	seq int64
}

func (v *vclock) Now() time.Time {
	// Each observation nudges time forward one nanosecond so MRU
	// timestamps are strictly ordered within a node, like a real clock's
	// monotonic reads.
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	return v.t.Add(time.Duration(v.seq))
}

func (v *vclock) set(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.After(v.t) {
		v.t = t
		v.seq = 0
	}
}

// simulation holds one run's live state.
type simulation struct {
	cfg Config
	rng *rand.Rand
	clk *vclock

	reg     *agent.Registry
	master  *core.Master
	members []string
	ring    *hashring.Ring

	db        *store.DB
	gen       *workload.Generator
	recorder  *metrics.Recorder
	secondary *policy.Secondary // CacheScale transition state

	scaler      autoscaler.Policy
	kvSinceTick uint64

	start    time.Time // virtual time at trace offset 0 (after warmup)
	nextNode int
	result   Result
	pending  []pendingEvent
	dbReads  uint64
}

// pendingEvent is a scheduled non-arrival event.
type pendingEvent struct {
	at   time.Time
	kind string // "decide", "execute", "secondary-expire", "autoscale"
	// decide payload:
	action trace.ScalingAction
	// execute payload:
	exec func() error
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &simulation{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		clk: &vclock{t: time.Unix(1_700_000_000, 0)},
		reg: agent.NewRegistry(),
	}
	s.result.Policy = cfg.Policy

	// Build the initial tier.
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := s.newNode(); err != nil {
			return nil, err
		}
	}
	s.members = s.reg.Nodes()
	ring, err := hashring.New(s.members)
	if err != nil {
		return nil, err
	}
	s.ring = ring

	master, err := core.NewMaster(
		core.RegistryDirectory{Registry: s.reg},
		s.members,
		core.WithClock(s.clk.Now),
	)
	if err != nil {
		return nil, err
	}
	s.master = master
	master.Subscribe(core.MembershipFunc(func(ms []string) {
		s.members = append([]string(nil), ms...)
		if r, err := hashring.New(ms); err == nil {
			s.ring = r
		}
	}))

	maxVal := cfg.MaxValueSize
	if maxVal <= 0 {
		maxVal = 128
	}
	dataset, err := store.NewDataset(cfg.Keys, store.WithSizeBounds(1, maxVal))
	if err != nil {
		return nil, err
	}
	db, err := store.NewDB(dataset, cfg.DBModel, store.WithClock(s.clk.Now))
	if err != nil {
		return nil, err
	}
	s.db = db

	gen, err := workload.NewGenerator(s.rng, cfg.Keys, workload.WithZipfS(cfg.ZipfS))
	if err != nil {
		return nil, err
	}
	s.gen = gen

	if cfg.AutoScale != nil {
		sc, err := autoscaler.New(*cfg.AutoScale)
		if err != nil {
			return nil, err
		}
		s.scaler = sc
	}

	s.start = s.clk.t.Add(cfg.Warmup)
	s.recorder = metrics.NewRecorder(s.start)
	s.scheduleActions()
	if err := s.loop(); err != nil {
		return nil, err
	}

	s.result.Series = s.recorder.Series()
	s.result.TotalRequests = uint64(countRequests(s.result.Series))
	s.result.DBReads = s.dbReads
	s.result.FinalMembers = append([]string(nil), s.members...)
	return &s.result, nil
}

func countRequests(series []metrics.SecondStat) int {
	total := 0
	for _, st := range series {
		total += st.Requests
	}
	return total
}

// newNode creates, registers, and names a fresh cache node.
func (s *simulation) newNode() (string, error) {
	name := fmt.Sprintf("node-%02d", s.nextNode)
	s.nextNode++
	cc, err := cache.New(int64(s.cfg.NodePages)*cache.PageSize, cache.WithClock(s.clk.Now))
	if err != nil {
		return "", err
	}
	a, err := agent.New(name, cc, s.reg)
	if err != nil {
		return "", err
	}
	s.reg.Register(a)
	return name, nil
}

// scheduleActions converts the trace's scripted actions (compressed to
// cfg.Duration) into decision events, or schedules AutoScaler ticks.
func (s *simulation) scheduleActions() {
	if s.scaler != nil {
		period := s.cfg.AutoScalePeriod
		if period <= 0 {
			period = time.Minute
		}
		for at := s.start.Add(period); at.Before(s.start.Add(s.cfg.Duration)); at = at.Add(period) {
			s.pending = append(s.pending, pendingEvent{at: at, kind: "autoscale"})
		}
		return
	}
	scale := float64(s.cfg.Duration) / float64(s.cfg.Trace.Duration())
	for _, a := range s.cfg.Trace.Actions {
		at := s.start.Add(time.Duration(float64(a.At) * scale))
		s.pending = append(s.pending, pendingEvent{at: at, kind: "decide", action: a})
	}
	sort.Slice(s.pending, func(i, j int) bool { return s.pending[i].at.Before(s.pending[j].at) })
}

// loop is the event loop: exponential arrivals interleaved with scheduled
// events until warmup+duration elapse.
func (s *simulation) loop() error {
	end := s.start.Add(s.cfg.Duration)
	now := s.clk.t
	for now.Before(end) {
		rate := s.currentRate(now)
		gap := time.Duration(s.rng.ExpFloat64() / rate * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		next := now.Add(gap)

		// Fire any scheduled events due before the next arrival.
		for len(s.pending) > 0 && !s.pending[0].at.After(next) {
			ev := s.pending[0]
			s.pending = s.pending[1:]
			s.clk.set(ev.at)
			if err := s.handleEvent(ev); err != nil {
				return err
			}
		}
		if next.After(end) {
			break
		}
		now = next
		s.clk.set(now)
		s.processRequest(now)
	}
	return nil
}

// currentRate maps virtual time to the web-request arrival rate.
func (s *simulation) currentRate(now time.Time) float64 {
	var frac float64
	if now.Before(s.start) {
		frac = 0 // warmup runs at the trace's initial rate
	} else {
		frac = float64(now.Sub(s.start)) / float64(s.cfg.Duration)
	}
	traceAt := time.Duration(frac * float64(s.cfg.Trace.Duration()))
	rate := s.cfg.Trace.RateAt(traceAt) * s.cfg.PeakRate
	if rate < 1 {
		rate = 1
	}
	return rate
}

// processRequest simulates one web request: a multi-get of KVPerRequest
// keys, misses served by the DB and inserted back into the cache. The
// response time is the mean of the KV fetch latencies (Section V-A).
func (s *simulation) processRequest(now time.Time) {
	var (
		total  time.Duration
		hits   int
		misses int
	)
	for i := 0; i < s.cfg.KVPerRequest; i++ {
		req := s.gen.Next()
		if s.scaler != nil {
			s.scaler.Record(req.Key)
		}
		s.kvSinceTick++
		lat, hit := s.fetchKV(req, now)
		total += lat
		if hit {
			hits++
		} else {
			misses++
		}
	}
	rt := total / time.Duration(s.cfg.KVPerRequest)
	if !now.Before(s.start) {
		s.recorder.RecordRequest(now, rt, hits, misses)
	}
}

// fetchKV resolves one KV get against the tier.
func (s *simulation) fetchKV(req workload.Request, now time.Time) (time.Duration, bool) {
	owner, err := s.ring.Get(req.Key)
	if err != nil {
		return s.dbFetch(req)
	}
	ag, err := s.reg.Get(owner)
	if err != nil {
		return s.dbFetch(req)
	}
	if _, err := ag.Cache().Get(req.Key); err == nil {
		return s.cfg.CacheHitLatency, true
	}

	// Primary miss: CacheScale consults the secondary during transition.
	if s.secondary.Active(now) {
		if value, ok := s.secondary.Lookup(s.reg, req.Key, now); ok {
			_ = ag.Cache().Set(req.Key, value)
			return 2 * s.cfg.CacheHitLatency, true
		}
	}

	lat, _ := s.dbFetch(req)
	value, err := s.db.Dataset().Value(req.Key)
	if err == nil {
		_ = ag.Cache().Set(req.Key, value)
	}
	return s.cfg.CacheHitLatency + lat, false
}

// dbFetch reads a key from the database tier at the modeled latency.
func (s *simulation) dbFetch(req workload.Request) (time.Duration, bool) {
	s.dbReads++
	_, lat, err := s.db.Get(req.Key)
	if err != nil {
		return s.cfg.DBModel.Base, false
	}
	return lat, false
}

// handleEvent dispatches one scheduled event.
func (s *simulation) handleEvent(ev pendingEvent) error {
	switch ev.kind {
	case "decide":
		return s.decide(ev.action)
	case "execute":
		return ev.exec()
	case "secondary-expire":
		if s.secondary != nil {
			for _, node := range s.secondary.Nodes {
				s.reg.Deregister(node)
			}
			s.secondary = nil
		}
		return nil
	case "autoscale":
		return s.autoscaleTick()
	default:
		return fmt.Errorf("sim: unknown event %q", ev.kind)
	}
}

// schedule inserts an event keeping the pending list sorted.
func (s *simulation) schedule(ev pendingEvent) {
	s.pending = append(s.pending, ev)
	sort.SliceStable(s.pending, func(i, j int) bool { return s.pending[i].at.Before(s.pending[j].at) })
}

// decide handles a scaling decision at the current virtual time.
func (s *simulation) decide(a trace.ScalingAction) error {
	current := len(s.members)
	target := a.ToNodes
	if target == current {
		return nil
	}
	if target < current {
		return s.decideScaleIn(current - target)
	}
	return s.decideScaleOut(target - current)
}

// decideScaleIn executes the policy-specific scale-in path.
func (s *simulation) decideScaleIn(x int) error {
	now := s.clk.t
	decisionAt := now.Sub(s.start)
	current := len(s.members)
	if x >= current {
		return fmt.Errorf("%w: scale in %d of %d", ErrBadConfig, x, current)
	}

	switch s.cfg.Policy {
	case policy.Baseline:
		// Same node choice as ElMem (Q2), no migration (Q3): flip now and
		// drop the retiring nodes cold.
		retiring, err := s.master.SelectRetiring(context.Background(), x)
		if err != nil {
			return err
		}
		retained := subtract(s.members, retiring)
		s.flipMembership(retained)
		for _, node := range retiring {
			s.reg.Deregister(node)
		}
		s.result.Actions = append(s.result.Actions, ExecutedAction{
			DecisionAt: decisionAt,
			ExecutedAt: decisionAt,
			FromNodes:  current,
			ToNodes:    current - x,
			Retiring:   retiring,
		})
		return nil

	case policy.ElMem:
		retiring, err := s.master.SelectRetiring(context.Background(), x)
		if err != nil {
			return err
		}
		s.schedule(pendingEvent{
			at:   now.Add(s.cfg.MigrationDelay),
			kind: "execute",
			exec: func() error {
				report, err := s.master.ScaleInNodes(context.Background(), retiring)
				if err != nil {
					return err
				}
				s.result.Actions = append(s.result.Actions, ExecutedAction{
					DecisionAt:    decisionAt,
					ExecutedAt:    s.clk.t.Sub(s.start),
					FromNodes:     current,
					ToNodes:       current - x,
					Retiring:      retiring,
					ItemsMigrated: report.ItemsMigrated,
				})
				for _, node := range retiring {
					s.reg.Deregister(node)
				}
				return nil
			},
		})
		return nil

	case policy.Naive:
		retiring, err := policy.PickRandomRetiring(s.rng, s.members, x)
		if err != nil {
			return err
		}
		fraction := float64(current-x) / float64(current)
		s.schedule(pendingEvent{
			at:   now.Add(s.cfg.MigrationDelay),
			kind: "execute",
			exec: func() error {
				retained := subtract(s.members, retiring)
				moved, err := policy.NaiveScaleIn(context.Background(), s.reg, retiring, retained, fraction)
				if err != nil {
					return err
				}
				s.flipMembership(retained)
				s.result.Actions = append(s.result.Actions, ExecutedAction{
					DecisionAt:    decisionAt,
					ExecutedAt:    s.clk.t.Sub(s.start),
					FromNodes:     current,
					ToNodes:       current - x,
					Retiring:      retiring,
					ItemsMigrated: moved,
				})
				for _, node := range retiring {
					s.reg.Deregister(node)
				}
				return nil
			},
		})
		return nil

	case policy.CacheScale:
		retiring, err := policy.PickRandomRetiring(s.rng, s.members, x)
		if err != nil {
			return err
		}
		retained := subtract(s.members, retiring)
		sec, err := policy.NewSecondary(retiring, now.Add(s.cfg.MigrationDelay))
		if err != nil {
			return err
		}
		s.secondary = sec
		s.flipMembership(retained)
		s.schedule(pendingEvent{at: sec.Deadline, kind: "secondary-expire"})
		s.result.Actions = append(s.result.Actions, ExecutedAction{
			DecisionAt: decisionAt,
			ExecutedAt: decisionAt,
			FromNodes:  current,
			ToNodes:    current - x,
			Retiring:   retiring,
		})
		return nil
	}
	return fmt.Errorf("%w: policy %v", ErrBadConfig, s.cfg.Policy)
}

// decideScaleOut executes the policy-specific scale-out path.
func (s *simulation) decideScaleOut(x int) error {
	now := s.clk.t
	decisionAt := now.Sub(s.start)
	current := len(s.members)

	added := make([]string, 0, x)
	for i := 0; i < x; i++ {
		name, err := s.newNode()
		if err != nil {
			return err
		}
		added = append(added, name)
	}

	if s.cfg.Policy == policy.ElMem {
		s.schedule(pendingEvent{
			at:   now.Add(s.cfg.MigrationDelay),
			kind: "execute",
			exec: func() error {
				report, err := s.master.ScaleOut(context.Background(), added)
				if err != nil {
					return err
				}
				s.result.Actions = append(s.result.Actions, ExecutedAction{
					DecisionAt:    decisionAt,
					ExecutedAt:    s.clk.t.Sub(s.start),
					FromNodes:     current,
					ToNodes:       current + x,
					Added:         added,
					ItemsMigrated: report.ItemsMigrated,
				})
				return nil
			},
		})
		return nil
	}

	// Baseline / Naive / CacheScale: cold scale-out, immediate flip.
	full := append(append([]string(nil), s.members...), added...)
	s.flipMembership(full)
	s.result.Actions = append(s.result.Actions, ExecutedAction{
		DecisionAt: decisionAt,
		ExecutedAt: decisionAt,
		FromNodes:  current,
		ToNodes:    current + x,
		Added:      added,
	})
	return nil
}

// autoscaleTick runs one AutoScaler decision (Section III-B closed loop).
func (s *simulation) autoscaleTick() error {
	period := s.cfg.AutoScalePeriod
	if period <= 0 {
		period = time.Minute
	}
	kvRate := float64(s.kvSinceTick) / period.Seconds()
	s.kvSinceTick = 0
	d, err := s.scaler.Decide(kvRate, len(s.members))
	if err != nil && !errors.Is(err, autoscaler.ErrInfeasible) {
		return err
	}
	s.scaler.Reset()
	if d.TargetNodes == len(s.members) {
		return nil
	}
	return s.decide(trace.ScalingAction{FromNodes: len(s.members), ToNodes: d.TargetNodes})
}

// flipMembership applies a membership change outside the Master's flow
// (the Master handles its own flips for ElMem/Baseline).
func (s *simulation) flipMembership(members []string) {
	sort.Strings(members)
	s.members = append([]string(nil), members...)
	if r, err := hashring.New(members); err == nil {
		s.ring = r
	}
	s.syncMaster(members)
}

// syncMaster rebuilds the Master over the new membership so later actions
// score the right node set. (Naive/CacheScale bypass the Master's flip.)
func (s *simulation) syncMaster(members []string) {
	master, err := core.NewMaster(
		core.RegistryDirectory{Registry: s.reg},
		members,
		core.WithClock(s.clk.Now),
	)
	if err != nil {
		return
	}
	s.master = master
	master.Subscribe(core.MembershipFunc(func(ms []string) {
		s.members = append([]string(nil), ms...)
		if r, err := hashring.New(ms); err == nil {
			s.ring = r
		}
	}))
}

// subtract returns members minus drop, preserving order.
func subtract(members, drop []string) []string {
	dropSet := make(map[string]struct{}, len(drop))
	for _, d := range drop {
		dropSet[d] = struct{}{}
	}
	var out []string
	for _, m := range members {
		if _, ok := dropSet[m]; !ok {
			out = append(out, m)
		}
	}
	return out
}
