package sim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/autoscaler"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/trace"
)

// quickConfig returns a fast configuration for unit tests: short duration,
// modest rates.
func quickConfig(t *testing.T, name trace.Name, kind policy.Kind) Config {
	t.Helper()
	tr, err := trace.Generate(name, trace.Options{Step: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tr)
	cfg.Policy = kind
	cfg.Duration = 3 * time.Minute
	cfg.Warmup = 2 * time.Minute
	cfg.PeakRate = 400
	cfg.Keys = 50_000
	cfg.NodePages = 4
	cfg.DBModel.Capacity = 150
	cfg.MigrationDelay = 10 * time.Second
	return cfg
}

func TestConfigValidation(t *testing.T) {
	tr := trace.MustGenerate(trace.ETC, trace.Options{})
	base := DefaultConfig(tr)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil trace", mutate: func(c *Config) { c.Trace = nil }},
		{name: "one node", mutate: func(c *Config) { c.Nodes = 1 }},
		{name: "zero pages", mutate: func(c *Config) { c.NodePages = 0 }},
		{name: "empty keyspace", mutate: func(c *Config) { c.Keys = 0 }},
		{name: "zero rate", mutate: func(c *Config) { c.PeakRate = 0 }},
		{name: "zero kv", mutate: func(c *Config) { c.KVPerRequest = 0 }},
		{name: "zero hit latency", mutate: func(c *Config) { c.CacheHitLatency = 0 }},
		{name: "zero duration", mutate: func(c *Config) { c.Duration = 0 }},
		{name: "bad db model", mutate: func(c *Config) { c.DBModel.Capacity = 0 }},
		{name: "bad policy", mutate: func(c *Config) { c.Policy = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestRunProducesSeries(t *testing.T) {
	cfg := quickConfig(t, trace.SYS, policy.Baseline)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no series produced")
	}
	if res.TotalRequests == 0 {
		t.Fatal("no requests processed")
	}
	if len(res.Actions) == 0 {
		t.Fatal("no scaling actions executed")
	}
	// The SYS trace scales 10 → 7.
	if got := len(res.FinalMembers); got != 7 {
		t.Fatalf("final members = %d, want 7", got)
	}
	// Series length ≈ duration in seconds.
	wantSecs := int(cfg.Duration / time.Second)
	if len(res.Series) < wantSecs-10 || len(res.Series) > wantSecs+10 {
		t.Fatalf("series has %d seconds, want ≈%d", len(res.Series), wantSecs)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := quickConfig(t, trace.SYS, policy.ElMem)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalRequests != b.TotalRequests || a.DBReads != b.DBReads {
		t.Fatalf("non-deterministic: %d/%d reqs, %d/%d reads",
			a.TotalRequests, b.TotalRequests, a.DBReads, b.DBReads)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatal("series lengths differ")
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Fatalf("series differ at second %d", i)
		}
	}
}

func TestWarmupFillsCaches(t *testing.T) {
	cfg := quickConfig(t, trace.SYS, policy.Baseline)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After warmup, the first recorded seconds should already hit well.
	early := res.Series[5]
	if early.HitRate() < 0.5 {
		t.Fatalf("hit rate %.2f at second 5 — warmup ineffective", early.HitRate())
	}
}

func TestElMemMigratesItems(t *testing.T) {
	cfg := quickConfig(t, trace.SYS, policy.ElMem)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Actions) == 0 {
		t.Fatal("no actions")
	}
	if res.Actions[0].ItemsMigrated == 0 {
		t.Fatal("ElMem migrated nothing")
	}
	// The flip happens MigrationDelay after the decision.
	a := res.Actions[0]
	lag := a.ExecutedAt - a.DecisionAt
	if lag < cfg.MigrationDelay || lag > cfg.MigrationDelay+5*time.Second {
		t.Fatalf("flip lag = %v, want ≈%v", lag, cfg.MigrationDelay)
	}
}

func TestBaselineFlipsImmediately(t *testing.T) {
	cfg := quickConfig(t, trace.SYS, policy.Baseline)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Actions[0]
	if a.ExecutedAt != a.DecisionAt {
		t.Fatalf("baseline flip lag = %v, want immediate", a.ExecutedAt-a.DecisionAt)
	}
	if a.ItemsMigrated != 0 {
		t.Fatalf("baseline migrated %d items, want 0", a.ItemsMigrated)
	}
}

// TestHeadlineElMemBeatsBaseline is the paper's core claim (Fig 2/6): the
// post-scaling degradation under ElMem is far smaller than under the
// baseline.
func TestHeadlineElMemBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("headline comparison runs full traces")
	}
	degradation := func(kind policy.Kind) metrics.Degradation {
		cfg := quickConfig(t, trace.SYS, kind)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// SYS action at 30/70 of the trace → scaled decision point.
		event := time.Duration(float64(cfg.Duration) * 30.0 / 70.0)
		return metrics.AnalyzeDegradation(res.Series, event, cfg.Duration-event, 20*time.Millisecond)
	}
	base := degradation(policy.Baseline)
	elmem := degradation(policy.ElMem)
	if base.PeakRT == 0 {
		t.Fatal("baseline shows no degradation — simulation too easy")
	}
	reduction := metrics.ReductionPercent(base, elmem)
	t.Logf("baseline mean P95 %v peak %v; elmem mean P95 %v peak %v; reduction %.1f%%",
		base.MeanP95, base.PeakRT, elmem.MeanP95, elmem.PeakRT, reduction)
	if elmem.MeanP95 >= base.MeanP95 {
		t.Fatalf("ElMem mean P95 %v not better than baseline %v", elmem.MeanP95, base.MeanP95)
	}
	if reduction < 50 {
		t.Fatalf("degradation reduction %.1f%%, want the paper's large (>50%%) improvement", reduction)
	}
}

func TestCacheScaleSecondaryServesDuringTransition(t *testing.T) {
	cfg := quickConfig(t, trace.SYS, policy.CacheScale)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Actions) == 0 {
		t.Fatal("no actions")
	}
	if got := len(res.FinalMembers); got != 7 {
		t.Fatalf("final members = %d, want 7", got)
	}
}

func TestNaivePolicyRuns(t *testing.T) {
	cfg := quickConfig(t, trace.SYS, policy.Naive)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Actions[0].ItemsMigrated == 0 {
		t.Fatal("naive migrated nothing")
	}
}

func TestScaleOutPath(t *testing.T) {
	// NLANR scales 8 → 9 (out) then 9 → 8 (in).
	cfg := quickConfig(t, trace.NLANR, policy.ElMem)
	cfg.Nodes = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Actions) != 2 {
		t.Fatalf("actions = %d, want 2", len(res.Actions))
	}
	out := res.Actions[0]
	if out.ToNodes != 9 || len(out.Added) != 1 {
		t.Fatalf("first action = %+v, want scale-out to 9", out)
	}
	if out.ItemsMigrated == 0 {
		t.Fatal("scale-out migrated nothing under ElMem")
	}
	if got := len(res.FinalMembers); got != 8 {
		t.Fatalf("final members = %d, want 8", got)
	}
}

func TestScaleOutBaselineCold(t *testing.T) {
	cfg := quickConfig(t, trace.NLANR, policy.Baseline)
	cfg.Nodes = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Actions[0]
	if out.ItemsMigrated != 0 {
		t.Fatalf("baseline scale-out migrated %d items", out.ItemsMigrated)
	}
}

func TestAutoScaleClosedLoop(t *testing.T) {
	cfg := quickConfig(t, trace.SYS, policy.ElMem)
	// r_DB here is the AutoScaler's planning constant, set so p_min is
	// attainable on a 30-second sampling window (whose cold-start misses
	// bound the observable hit rate): at the pre-drop ~4000 KV/s this
	// gives p_min = 0.5, and after the SYS drop p_min goes negative,
	// forcing a scale-in to the floor.
	cfg.AutoScale = &autoscaler.Config{
		DBCapacity:   2000,
		ItemsPerNode: 6000,
		MinNodes:     2,
		MaxNodes:     12,
	}
	cfg.AutoScalePeriod = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRequests == 0 {
		t.Fatal("no requests")
	}
	// The SYS demand drop must lead the closed loop to shrink the tier.
	if len(res.FinalMembers) >= 10 {
		t.Fatalf("autoscaler kept %d nodes despite the demand drop", len(res.FinalMembers))
	}
}

func TestHitRateDropsAfterBaselineScaleIn(t *testing.T) {
	cfg := quickConfig(t, trace.SYS, policy.Baseline)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Actions[0]
	before := avgHitRate(res.Series, a.ExecutedAt-20*time.Second, a.ExecutedAt)
	after := avgHitRate(res.Series, a.ExecutedAt, a.ExecutedAt+20*time.Second)
	if after >= before {
		t.Fatalf("hit rate before %.3f, after %.3f — baseline cold-cache dip missing", before, after)
	}
}

func avgHitRate(series []metrics.SecondStat, from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, st := range series {
		if st.At < from || st.At >= to || st.Requests == 0 {
			continue
		}
		sum += st.HitRate()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
