package cluster

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
)

// ServeOptions parameterizes RunServeThrough, the serve-through scaling
// experiment: concurrent read-through traffic (miss → simulated backing
// store → fill) driven across a live ScaleIn and ScaleOut, with the fill
// path either lease-protected (LeaseGet/LeaseSet) or plain (Get/Set).
type ServeOptions struct {
	// Nodes is the starting tier size (default 4).
	Nodes int
	// Workers is the concurrent client goroutine count (default 8).
	Workers int
	// Ops is the total measured read count across workers (default 12000).
	// Workers keep serving past their quota until both scaling actions
	// finish, so every run interleaves traffic with the handovers.
	Ops int
	// Keys is the keyspace size; the cache starts cold so first touches
	// miss through to the backing store (default 2048).
	Keys uint64
	// Theta is the Zipf skew (default 1.2 — hot head, concurrent misses).
	Theta float64
	// ValueSize is the fill value size in bytes (default 64).
	ValueSize int
	// DBLatency is the simulated backing-store fetch time (default 2ms).
	DBLatency time.Duration
	// Seed seeds the per-worker workload generators (default 1).
	Seed int64
	// InvalidateTop is how many of the hottest ranks a background
	// invalidator deletes every InvalidateEvery, re-arming the miss storm
	// the lease protocol exists to absorb (default 8).
	InvalidateTop int
	// InvalidateEvery is the invalidation cadence (default 10ms; negative
	// disables the invalidator).
	InvalidateEvery time.Duration
	// Leases selects the lease-protected fill path.
	Leases bool
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Ops <= 0 {
		o.Ops = 12000
	}
	if o.Keys == 0 {
		o.Keys = 2048
	}
	if o.Theta == 0 {
		o.Theta = 1.2
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 64
	}
	if o.DBLatency == 0 {
		o.DBLatency = 2 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.InvalidateTop <= 0 {
		o.InvalidateTop = 8
	}
	if o.InvalidateEvery == 0 {
		o.InvalidateEvery = 10 * time.Millisecond
	}
	return o
}

// ServeReport is one RunServeThrough measurement.
type ServeReport struct {
	// Leases records which fill path ran.
	Leases bool
	// Ops is the measured read count; Errors counts reads that failed even
	// after a retry (transient dial races during the membership flip).
	Ops    int
	Errors int
	// DBLoads is the backing-store fetch count — the number the lease
	// protocol exists to bound.
	DBLoads int64
	// P50/P99 are client-observed read-through latencies (including the
	// simulated store fetch on misses).
	P50, P99 time.Duration
	// ScaleInDur/ScaleOutDur time the two live scaling actions.
	ScaleInDur, ScaleOutDur time.Duration
	// Lease/gutter activity aggregated over the final members' wire stats.
	LeaseGranted, LeaseFilled, GutterFills uint64
	// OwnershipVersion is the final table version after both handovers.
	OwnershipVersion uint64
}

// RunServeThrough boots a cluster cold, drives concurrent Zipf read-through
// traffic, and scales the tier in then out while the traffic runs. Misses
// fetch from a simulated backing store (DBLatency sleep + counter) and fill
// the cache; with Leases the fill is token-gated so a miss storm on a hot
// key costs one store fetch instead of one per racer.
func RunServeThrough(opts ServeOptions) (*ServeReport, error) {
	opts = opts.withDefaults()
	c, err := StartLocal(Config{Nodes: opts.Nodes})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	cl := c.Client()

	value := make([]byte, opts.ValueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	var dbLoads atomic.Int64
	dbFetch := func() []byte {
		time.Sleep(opts.DBLatency)
		dbLoads.Add(1)
		return value
	}

	var (
		scaleDone atomic.Bool
		errCount  atomic.Int64
		latMu     sync.Mutex
		lat       []time.Duration
	)

	// One read-through op; returns the op's latency. Transient errors
	// (membership-flip dial races) get one retry before counting.
	readThrough := func(key string) time.Duration {
		start := time.Now()
		for attempt := 0; ; attempt++ {
			var err error
			if opts.Leases {
				err = leaseReadThrough(cl, key, opts.DBLatency, dbFetch)
			} else {
				err = plainReadThrough(cl, key, dbFetch)
			}
			if err == nil {
				break
			}
			if attempt >= 1 {
				errCount.Add(1)
				break
			}
		}
		return time.Since(start)
	}

	// Invalidator: deleting the hottest keys on a cadence re-arms the miss
	// storm over and over — the thundering-herd pattern leases bound.
	stopInv := make(chan struct{})
	var invWG sync.WaitGroup
	if opts.InvalidateEvery > 0 {
		invWG.Add(1)
		go func() {
			defer invWG.Done()
			tick := time.NewTicker(opts.InvalidateEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopInv:
					return
				case <-tick.C:
					for rank := 0; rank < opts.InvalidateTop; rank++ {
						_, _ = cl.Delete(workload.KeyName(uint64(rank)))
					}
				}
			}
		}()
	}

	opsPer := opts.Ops / opts.Workers
	maxPer := opsPer * 4
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			z, zerr := workload.NewZipf(rng, opts.Theta, opts.Keys)
			if zerr != nil {
				errCount.Add(1)
				return
			}
			mine := make([]time.Duration, 0, opsPer)
			for i := 0; i < opsPer || (!scaleDone.Load() && i < maxPer); i++ {
				mine = append(mine, readThrough(workload.KeyName(z.Next())))
			}
			latMu.Lock()
			lat = append(lat, mine...)
			latMu.Unlock()
		}(w)
	}

	// Scale the tier in then out while the workers hammer it.
	ctx := context.Background()
	time.Sleep(50 * time.Millisecond) // let traffic ramp before the handover
	t0 := time.Now()
	_, inErr := c.ScaleIn(ctx, 1)
	inDur := time.Since(t0)
	t1 := time.Now()
	_, outErr := c.ScaleOut(ctx, 1)
	outDur := time.Since(t1)
	scaleDone.Store(true)
	wg.Wait()
	close(stopInv)
	invWG.Wait()
	if inErr != nil {
		return nil, fmt.Errorf("scale-in under load: %w", inErr)
	}
	if outErr != nil {
		return nil, fmt.Errorf("scale-out under load: %w", outErr)
	}

	rep := &ServeReport{
		Leases:      opts.Leases,
		Ops:         len(lat),
		Errors:      int(errCount.Load()),
		DBLoads:     dbLoads.Load(),
		ScaleInDur:  inDur,
		ScaleOutDur: outDur,
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		rep.P50 = lat[len(lat)/2]
		rep.P99 = lat[len(lat)*99/100]
	}
	if stats, err := cl.StatsAll(); err == nil {
		for _, st := range stats {
			rep.LeaseGranted += parseU64(st["lease_granted"])
			rep.LeaseFilled += parseU64(st["lease_filled"])
			rep.GutterFills += parseU64(st["gutter_fills"])
			if v := parseU64(st["ownership_version"]); v > rep.OwnershipVersion {
				rep.OwnershipVersion = v
			}
		}
	}
	return rep, nil
}

// leaseReadThrough is the lease-protected fill path: a miss that wins the
// token fetches and fills; a miss that loses it (token 0: some other racer
// holds the lease) backs off and re-reads instead of hammering the store.
func leaseReadThrough(cl serveClient, key string, dbLatency time.Duration, dbFetch func() []byte) error {
	for attempt := 0; ; attempt++ {
		_, token, hit, err := cl.LeaseGet(key)
		if err != nil {
			return err
		}
		if hit {
			return nil
		}
		if token == 0 {
			if attempt < 8 {
				time.Sleep(dbLatency / 2)
				continue
			}
			// The fill never landed (holder crashed or its write was
			// invalidated): load ourselves without a token.
			v := dbFetch()
			return cl.Set(key, v)
		}
		v := dbFetch()
		// A rejected fill means someone beat us or a write invalidated the
		// lease — the value is either there or fresher, so not an error.
		_ = cl.LeaseSet(key, v, token)
		return nil
	}
}

// plainReadThrough is the unprotected baseline: every miss fetches.
func plainReadThrough(cl serveClient, key string, dbFetch func() []byte) error {
	_, ok, err := cl.Get(key)
	if err != nil {
		return err
	}
	if ok {
		return nil
	}
	v := dbFetch()
	return cl.Set(key, v)
}

// serveClient is the client surface the serve-through workers need.
type serveClient interface {
	Get(key string) ([]byte, bool, error)
	Set(key string, value []byte) error
	LeaseGet(key string) (value []byte, token uint64, hit bool, err error)
	LeaseSet(key string, value []byte, token uint64) error
}

func parseU64(s string) uint64 {
	v, _ := strconv.ParseUint(s, 10, 64)
	return v
}

// RenderServe runs the paired leases-off/on measurement and writes the
// comparison table.
func RenderServe(w io.Writer, opts ServeOptions) error {
	opts = opts.withDefaults()
	opts.Leases = false
	off, err := RunServeThrough(opts)
	if err != nil {
		return err
	}
	on := opts
	on.Leases = true
	onRep, err := RunServeThrough(on)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "nodes=%d workers=%d keys=%d theta=%.2f db-latency=%s\n",
		opts.Nodes, opts.Workers, opts.Keys, opts.Theta, opts.DBLatency)
	fmt.Fprintf(w, "%-18s %14s %14s\n", "", "leases=off", "leases=on")
	fmt.Fprintf(w, "%-18s %14d %14d\n", "ops", off.Ops, onRep.Ops)
	fmt.Fprintf(w, "%-18s %14d %14d\n", "db-loads", off.DBLoads, onRep.DBLoads)
	fmt.Fprintf(w, "%-18s %14s %14s\n", "p50", off.P50.Round(time.Microsecond), onRep.P50.Round(time.Microsecond))
	fmt.Fprintf(w, "%-18s %14s %14s\n", "p99", off.P99.Round(time.Microsecond), onRep.P99.Round(time.Microsecond))
	fmt.Fprintf(w, "%-18s %14d %14d\n", "errors", off.Errors, onRep.Errors)
	fmt.Fprintf(w, "%-18s %14s %14s\n", "scale-in", off.ScaleInDur.Round(time.Millisecond), onRep.ScaleInDur.Round(time.Millisecond))
	fmt.Fprintf(w, "%-18s %14s %14s\n", "scale-out", off.ScaleOutDur.Round(time.Millisecond), onRep.ScaleOutDur.Round(time.Millisecond))
	fmt.Fprintf(w, "%-18s %14d %14d\n", "lease-granted", off.LeaseGranted, onRep.LeaseGranted)
	fmt.Fprintf(w, "%-18s %14d %14d\n", "lease-filled", off.LeaseFilled, onRep.LeaseFilled)
	fmt.Fprintf(w, "%-18s %14d %14d\n", "gutter-fills", off.GutterFills, onRep.GutterFills)
	fmt.Fprintf(w, "%-18s %14d %14d\n", "ownership-version", off.OwnershipVersion, onRep.OwnershipVersion)
	if onRep.DBLoads > 0 {
		fmt.Fprintf(w, "%-18s %29.2fx\n", "db-load-reduction", float64(off.DBLoads)/float64(onRep.DBLoads))
	}
	return nil
}
