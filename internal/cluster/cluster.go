// Package cluster wires a complete local ElMem deployment with one call:
// N Memcached nodes served over TCP, their Agents and RPC endpoints, a
// Master, and a consistent-hashing client whose membership follows the
// Master's scaling actions. It is the embedding API a downstream user
// starts from, and what the examples and integration tests build on.
//
// Node names are their client-facing cache addresses, so the Master's
// membership announcements feed the client directly.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"

	"repro/internal/agent"
	"repro/internal/agentrpc"
	"repro/internal/cache"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/hotkey"
	"repro/internal/server"
)

// ErrClosed is returned by operations on a closed cluster.
var ErrClosed = errors.New("cluster: closed")

// Config parameterizes StartLocal.
type Config struct {
	// Nodes is the initial tier size (default 3).
	Nodes int
	// NodeMemory is each node's cache budget in bytes (default 8 MiB).
	NodeMemory int64
	// Host is the listen host (default 127.0.0.1, ephemeral ports).
	Host string
	// Logger receives node diagnostics (default: discarded).
	Logger *log.Logger
	// HotKeys, when non-nil, enables hot-key detection and replicated
	// serving on every node with the given configuration.
	HotKeys *hotkey.Config
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Nodes <= 0 {
		out.Nodes = 3
	}
	if out.NodeMemory <= 0 {
		out.NodeMemory = 8 * cache.PageSize
	}
	if out.Host == "" {
		out.Host = "127.0.0.1"
	}
	if out.Logger == nil {
		out.Logger = log.New(io.Discard, "", 0)
	}
	return out
}

// node bundles one running cache node.
type node struct {
	name   string
	cache  *cache.Cache
	agent  *agent.Agent
	server *server.Server
	rpc    *agentrpc.Server
	hot    *hotkey.Replicator
	pusher *hotkey.NetPusher
}

// Cluster is a running local ElMem deployment.
type Cluster struct {
	cfg    Config
	book   *agentrpc.AddressBook
	master *core.Master
	client *client.Cluster

	mu     sync.Mutex
	nodes  map[string]*node
	closed bool
}

// StartLocal boots the deployment.
func StartLocal(cfg Config) (*Cluster, error) {
	c := &Cluster{
		cfg:   cfg.withDefaults(),
		book:  agentrpc.NewAddressBook(),
		nodes: make(map[string]*node),
	}
	var members []string
	for i := 0; i < c.cfg.Nodes; i++ {
		n, err := c.startNode()
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		members = append(members, n.name)
	}
	sort.Strings(members)

	master, err := core.NewMaster(
		agentrpc.Directory{Book: c.book},
		members,
		core.WithNodeStopper(c.stopNode),
	)
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	c.master = master
	c.mu.Lock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })
	for _, n := range nodes {
		// Servers gate lease fills into the gutter and agents gate stale
		// imports off the per-segment ownership table.
		master.SubscribeOwnership(n.server)
		master.SubscribeOwnership(n.agent)
		if c.cfg.HotKeys != nil {
			master.Subscribe(n.hot)
		}
	}

	cl, err := client.New(members)
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	c.client = cl
	master.Subscribe(cl)
	return c, nil
}

// startNode boots one cache node and registers it everywhere.
func (c *Cluster) startNode() (*node, error) {
	cc, err := cache.New(c.cfg.NodeMemory)
	if err != nil {
		return nil, err
	}
	srv, err := server.Listen(c.cfg.Host+":0", cc, server.WithLogger(c.cfg.Logger))
	if err != nil {
		return nil, err
	}
	name := srv.Addr()
	ag, err := agent.New(name, cc, c.book)
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	rpc, err := agentrpc.Serve(c.cfg.Host+":0", ag, c.cfg.Logger)
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	c.book.Register(name, rpc.Addr())
	n := &node{name: name, cache: cc, agent: ag, server: srv, rpc: rpc}
	if c.master != nil {
		// Scale-out path: the initial StartLocal loop runs before the
		// Master exists and subscribes there instead.
		c.master.SubscribeOwnership(n.server)
		c.master.SubscribeOwnership(n.agent)
	}
	if c.cfg.HotKeys != nil {
		n.pusher = hotkey.NewNetPusher(0, 0)
		n.hot = hotkey.New(name, cc, n.pusher, *c.cfg.HotKeys)
		n.hot.Start()
		srv.SetHotKeys(n.hot)
		ag.SetOwnedFilter(n.hot.OwnedFilter())
		if c.master != nil {
			// Scale-out path: the initial StartLocal loop runs before the
			// Master exists and subscribes there instead.
			c.master.Subscribe(n.hot)
		}
	}
	c.mu.Lock()
	c.nodes[name] = n
	c.mu.Unlock()
	c.cfg.Logger.Printf("cluster: node %s up (agent %s)", name, rpc.Addr())
	return n, nil
}

// stopNode is the Master's node stopper: close the retired node's servers
// and drop it from the book.
func (c *Cluster) stopNode(name string) error {
	c.mu.Lock()
	n, ok := c.nodes[name]
	delete(c.nodes, name)
	c.mu.Unlock()
	if !ok {
		return nil
	}
	c.book.Deregister(name)
	if n.hot != nil {
		n.hot.Stop()
	}
	if n.pusher != nil {
		n.pusher.Close()
	}
	err := n.server.Close()
	if rpcErr := n.rpc.Close(); err == nil {
		err = rpcErr
	}
	c.cfg.Logger.Printf("cluster: node %s retired", name)
	return err
}

// TickHotKeys runs one promotion/demotion evaluation on every node, in
// name order so tests get deterministic push sequences. It is a no-op
// when hot-key serving is disabled.
func (c *Cluster) TickHotKeys() {
	c.mu.Lock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.hot != nil {
			nodes = append(nodes, n)
		}
	}
	c.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })
	for _, n := range nodes {
		n.hot.Tick()
	}
}

// HotKeys returns a member's replicator (nil when disabled).
func (c *Cluster) HotKeys(name string) *hotkey.Replicator {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[name]; ok {
		return n.hot
	}
	return nil
}

// Client returns the consistent-hashing client, already subscribed to
// membership changes.
func (c *Cluster) Client() *client.Cluster { return c.client }

// Master returns the ElMem Master.
func (c *Cluster) Master() *core.Master { return c.master }

// Members returns the current membership.
func (c *Cluster) Members() []string { return c.master.Members() }

// Node returns a member's cache for inspection (tests, stats).
func (c *Cluster) Node(name string) (*cache.Cache, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", name)
	}
	return n.cache, nil
}

// ScaleIn retires x nodes with the full ElMem migration and shuts them
// down; the client's membership follows automatically. Cancelling ctx
// aborts the migration before the membership flip.
func (c *Cluster) ScaleIn(ctx context.Context, x int) (*core.ScaleReport, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	return c.master.ScaleIn(ctx, x)
}

// ScaleOut boots x fresh nodes, migrates their hash share to them, and
// flips the membership. On migration failure the freshly booted nodes are
// torn down again so the cluster returns to its pre-call state.
func (c *Cluster) ScaleOut(ctx context.Context, x int) (*core.ScaleReport, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if x < 1 {
		return nil, fmt.Errorf("cluster: scale out by %d", x)
	}
	var added []string
	for i := 0; i < x; i++ {
		n, err := c.startNode()
		if err != nil {
			return nil, err
		}
		added = append(added, n.name)
	}
	report, err := c.master.ScaleOut(ctx, added)
	if err != nil {
		for _, name := range added {
			_ = c.stopNode(name)
		}
	}
	return report, err
}

// TotalItems sums resident items across members.
func (c *Cluster) TotalItems() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.nodes {
		total += n.cache.Len()
	}
	return total
}

// Close shuts every node down and releases the client.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.nodes = make(map[string]*node)
	c.mu.Unlock()

	if c.client != nil {
		c.client.Close()
	}
	var firstErr error
	for _, n := range nodes {
		if n.hot != nil {
			n.hot.Stop()
		}
		if n.pusher != nil {
			n.pusher.Close()
		}
		if err := n.server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := n.rpc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.book.Close()
	return firstErr
}
