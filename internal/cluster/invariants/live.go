package invariants

// The live-traffic stage interleaves client-style reads and writes with
// the scaling action, hooked at the Master's deterministic phase
// boundaries. It validates the serve-through contract under migration:
// a value written through the ownership table's write plan must stay
// readable through its read plan at every later phase, and must sit on
// exactly the final owner once the handover settles.
//
// Determinism rules (the harness's load-bearing constraint):
//   - ops run only inside phase hooks, which fire synchronously on the
//     Master's goroutine at fixed points of the schedule;
//   - writes use BatchImport with explicit fixed timestamps (base + 1h +
//     op-index ms), so they never tick the shared logical clock;
//   - reads use Peek, which touches neither MRU order nor the clock;
//   - keys carry an "lv-" prefix and a counter, values are a pure
//     function of the key — no randomness, so gold and faulty runs that
//     reach the same phases perform identical traffic.
//
// Writes happen only at the post-data (scale-in), post-hashsplit
// (scale-out), and post-handover hooks: earlier hooks run before the
// oracle's inputs are consumed, and a write there would perturb the
// FuseCache expectation. Mid-handover writes follow the dual-apply write
// plan; the duplicate on the outgoing owner is deleted at the handover
// hook, mirroring the client's settled routing (and keeping I5's
// no-double-residency check meaningful for live keys).

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/hashring"
)

// liveWritesPerHook is how many fresh keys each write hook stores. Small
// on purpose: live keys are MRU-hottest (future timestamps) and must not
// evict enough staged data to disturb the migration oracle.
const liveWritesPerHook = 3

// liveStage drives the interleaved traffic. All methods run on the
// Master's goroutine (phase hooks and ownership announcements are
// synchronous), so plain fields suffice.
type liveStage struct {
	caches map[string]*cache.Cache
	table  *hashring.Table
	base   time.Time
	seq    int
	// written maps each live key to its expected value hash and the
	// targets it was applied to (for outgoing-copy cleanup at handover).
	written map[string]*liveWrite
	order   []string // written keys in write order
	// violations collects mid-run read-plan failures; checkLive reports
	// them with the final-owner audit.
	violations []string
}

type liveWrite struct {
	vhash   uint64
	targets []string
}

func newLiveStage(caches map[string]*cache.Cache, base time.Time) *liveStage {
	return &liveStage{
		caches:  caches,
		base:    base,
		written: make(map[string]*liveWrite),
	}
}

// OwnershipChanged tracks the Master's table announcements,
// version-monotonically like every other listener.
func (ls *liveStage) OwnershipChanged(t *hashring.Table) {
	if ls.table == nil || t.Version() > ls.table.Version() {
		ls.table = t
	}
}

// hook is the phase callback: read-check everything written so far, then
// write fresh keys at the post-move hooks.
func (ls *liveStage) hook(phase string) {
	if ls.table == nil {
		return
	}
	if phase == "handover" {
		ls.dropOutgoingCopies()
	}
	ls.readAll(phase)
	switch phase {
	case "data", "hashsplit", "handover":
		ls.write(phase)
	}
}

// readAll asserts the serve-through read contract: every live key must be
// readable through the current read plan — on the primary, or, for a
// mid-handover segment, on the retiring-owner fallback.
func (ls *liveStage) readAll(phase string) {
	for _, key := range ls.order {
		primary, fallback, err := ls.table.ReadPlan(key)
		if err != nil {
			ls.violations = append(ls.violations, fmt.Sprintf("L1: read plan for %s at %s: %v", key, phase, err))
			continue
		}
		val, ok := ls.caches[primary].Peek(key)
		if !ok && fallback != "" {
			val, ok = ls.caches[fallback].Peek(key)
		}
		if !ok {
			ls.violations = append(ls.violations, fmt.Sprintf("L1: live key %s unreadable at %s hook (plan %s/%s)", key, phase, primary, fallback))
			continue
		}
		if valueHash(val) != ls.written[key].vhash {
			ls.violations = append(ls.violations, fmt.Sprintf("L1: live key %s torn at %s hook", key, phase))
		}
	}
}

// write stores fresh keys through the write plan: dual-applied while the
// key's segment is mid-handover, single-homed once settled. Timestamps
// are fixed far in the future so imports are tick-neutral and the keys
// never age below staged data.
func (ls *liveStage) write(phase string) {
	for i := 0; i < liveWritesPerHook; i++ {
		key := fmt.Sprintf("lv-%04d", ls.seq)
		ls.seq++
		primary, second, err := ls.table.WritePlan(key)
		if err != nil {
			ls.violations = append(ls.violations, fmt.Sprintf("L1: write plan for %s at %s: %v", key, phase, err))
			continue
		}
		val := makeValue(key, 32)
		ts := ls.base.Add(time.Hour + time.Duration(ls.seq)*time.Millisecond)
		targets := []string{primary}
		if second != "" && second != primary {
			targets = append(targets, second)
		}
		for _, node := range targets {
			pair := []cache.KV{{Key: key, Value: val, Flags: 7, LastAccess: ts}}
			if n, err := ls.caches[node].BatchImport(pair, true); err != nil || n != 1 {
				ls.violations = append(ls.violations, fmt.Sprintf("L1: write %s to %s at %s: n=%d err=%v", key, node, phase, n, err))
			}
		}
		ls.written[key] = &liveWrite{vhash: valueHash(val), targets: targets}
		ls.order = append(ls.order, key)
	}
}

// dropOutgoingCopies deletes the dual-write duplicates from nodes that
// lost ownership once the table settles, as a client's settled routing
// would stop refreshing them. Runs at the handover hook, when the
// announced table is settled again.
func (ls *liveStage) dropOutgoingCopies() {
	for _, key := range ls.order {
		w := ls.written[key]
		if len(w.targets) < 2 {
			continue
		}
		owner, err := ls.table.Owner(key)
		if err != nil {
			ls.violations = append(ls.violations, fmt.Sprintf("L1: owner of %s at handover: %v", key, err))
			continue
		}
		kept := w.targets[:0]
		for _, node := range w.targets {
			if node == owner {
				kept = append(kept, node)
				continue
			}
			_ = ls.caches[node].Delete(key)
		}
		if len(kept) == 0 {
			// The settled owner never held a copy (it was not in the write
			// plan): a real routing bug, surfaced by the read check next.
			kept = append(kept, owner)
		}
		w.targets = kept
	}
}

// checkLive is the live-consistency invariant (L1): after a completed
// action every live key holds its last written value on the final owner,
// and every mid-run read-plan assertion held.
func checkLive(rc *runCtx) []string {
	ls := rc.live
	if ls == nil {
		return nil
	}
	v := append([]string(nil), ls.violations...)
	final := rc.master.Members()
	ring, err := hashring.New(final)
	if err != nil {
		return append(v, fmt.Sprintf("L1: final membership %v invalid: %v", final, err))
	}
	keys := append([]string(nil), ls.order...)
	sort.Strings(keys)
	for _, key := range keys {
		owner, err := ring.Get(key)
		if err != nil {
			v = append(v, fmt.Sprintf("L1: final owner of %s: %v", key, err))
			continue
		}
		val, ok := rc.caches[owner].Peek(key)
		if !ok {
			v = append(v, fmt.Sprintf("L1: live key %s missing from final owner %s", key, owner))
			continue
		}
		if valueHash(val) != ls.written[key].vhash {
			v = append(v, fmt.Sprintf("L1: live key %s on %s lost its last write", key, owner))
		}
	}
	return v
}
