package invariants

import (
	"strings"
	"testing"
)

// TestGoldRunIsFaultFreeAndClean: with injection disabled the action must
// complete, inject nothing, and satisfy every invariant.
func TestGoldRunIsFaultFreeAndClean(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: gold run aborted in %q: %s", seed, res.Aborted, res.Err)
		}
		if res.Injected != 0 || res.EventLog != "" {
			t.Fatalf("seed %d: gold run injected %d faults", seed, res.Injected)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("seed %d: gold run violations: %v", seed, res.Violations)
		}
		if res.ItemsMigrated == 0 {
			t.Fatalf("seed %d: gold run migrated nothing", seed)
		}
		if res.LiveWrites == 0 {
			t.Fatalf("seed %d: live stage wrote nothing — traffic interleaving is vacuous", seed)
		}
	}
}

// TestLiveTrafficSurvivesFaultyRuns: the interleaved live stage must write
// through the handover under faults and still satisfy the L1 consistency
// check (last written value on the final owner).
func TestLiveTrafficSurvivesFaultyRuns(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		res, err := Run(Config{Seed: seed, Faults: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
		if res.Completed && res.LiveWrites == 0 {
			t.Fatalf("seed %d: completed run wrote no live traffic", seed)
		}
	}
}

// TestFaultyRunsAreDeterministic: the same seed must reproduce the exact
// fault schedule and final state, and a completed faulty run must land on
// the gold state (invariant I3).
func TestFaultyRunsAreDeterministic(t *testing.T) {
	sawInjection := false
	for seed := int64(1); seed <= 6; seed++ {
		rep, err := CheckSeed(seed, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) > 0 {
			t.Fatalf("seed %d: %v", seed, rep.Violations)
		}
		if rep.Injected > 0 {
			sawInjection = true
		}
	}
	if !sawInjection {
		t.Fatal("no seed injected any fault; the sweep is vacuous")
	}
}

// TestSweepCoversBothDirections: a short sweep must exercise scale-in and
// scale-out and come back clean.
func TestSweepCoversBothDirections(t *testing.T) {
	var lines []string
	reports, clean, err := Sweep(1, 10, 0, 0, func(format string, args ...any) {
		lines = append(lines, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !clean {
		for _, r := range reports {
			for _, v := range r.Violations {
				t.Errorf("seed %d: %s", r.Seed, v)
			}
		}
	}
	dirs := map[string]bool{}
	for _, r := range reports {
		dirs[r.Direction] = true
	}
	if !dirs["in"] || !dirs["out"] {
		t.Fatalf("sweep covered directions %v, want both in and out", dirs)
	}
	if len(lines) == 0 {
		t.Fatal("sweep logged nothing")
	}
}

// TestViolationMessagesNameTheInvariant: messages must be greppable by
// invariant tag so a failing chaos run points at the property, not just a
// seed. Checked against a synthetic violation from a doctored oracle.
func TestViolationMessagesNameTheInvariant(t *testing.T) {
	res, err := Run(Config{Seed: 2}) // seed 2 is a scale-in
	if err != nil {
		t.Fatal(err)
	}
	if res.Direction != "in" || !res.Completed {
		t.Skipf("seed 2 shape changed (dir=%s completed=%v)", res.Direction, res.Completed)
	}
	for _, v := range res.Violations {
		if !strings.HasPrefix(v, "I") && !strings.HasPrefix(v, "determinism") {
			t.Fatalf("violation %q has no invariant tag", v)
		}
	}
}
