// Package invariants is the chaos harness: it runs ElMem scaling actions
// on a deterministic in-process cluster under a seeded faultnet schedule
// and checks the paper's correctness properties afterwards.
//
// Determinism is the load-bearing design constraint — a failing seed must
// reproduce exactly:
//
//   - nodes carry logical names ("n00", "n01", …) rather than TCP
//     addresses, so consistent-hash placement cannot shift with ephemeral
//     ports between runs;
//   - every cache and the Master share one logical clock (a counter, not
//     wall time), so MRU timestamps are a pure function of operation
//     order;
//   - the Master runs with a worker limit of 1, serializing per-phase
//     fan-out, and all transports are in-process (agent.Registry wrapped
//     by faultnet);
//   - the fault plan itself is drawn from the seeded rng, and the gold
//     (fault-free) run consumes the rng identically so both runs stage
//     the same cluster, pick the same action, and differ only in whether
//     the schedule is enabled.
//
// The five invariants checked after each run are described in
// invariants.go; the sweep driver in sweep.go adds the cross-run checks
// (same seed twice → identical event log and final state; faulty
// completed state == gold state).
package invariants

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/hashring"
	"repro/internal/taskgroup"
)

// cacheBytes sizes each node's cache: 16 pages → two shards, so the MRU
// order checks exercise the sharded import path.
const cacheBytes = 16 * cache.PageSize

// Config selects one harness run.
type Config struct {
	// Seed drives everything: population, action choice, fault plan, and
	// the faultnet schedule.
	Seed int64
	// Nodes is the starting membership size (default 4, minimum 3).
	Nodes int
	// Items is the number of keys placed per node on average (default 48).
	Items int
	// Faults enables the fault schedule. A gold run (Faults=false) stages
	// the identical cluster and action with injection disabled.
	Faults bool
}

func (c Config) withDefaults() Config {
	if c.Nodes < 3 {
		c.Nodes = 4
	}
	if c.Items <= 0 {
		c.Items = 48
	}
	return c
}

// Result is one run's outcome plus everything the sweep needs to compare
// runs: the canonical fault-event log and a digest of the final cluster
// state.
type Result struct {
	Seed      int64
	Direction string // "in" or "out"
	// Completed is true when the scaling action finished; otherwise
	// Aborted/Err describe the clean failure.
	Completed bool
	Aborted   string
	Err       string
	// ItemsMigrated echoes the report; Injected counts non-pass decisions.
	ItemsMigrated int
	Retries       int
	Injected      int
	// HotStaged counts the hot-key promotions staged before the action —
	// replicated state the migration ran against.
	HotStaged int
	// LiveWrites counts the live-stage keys written at phase hooks — the
	// client traffic interleaved with the action.
	LiveWrites int
	// EventLog is the canonical faultnet fingerprint (empty for gold runs).
	EventLog string
	// StateHash digests (membership, every resident item) after the run.
	StateHash string
	// Violations lists every invariant breach found; empty means clean.
	Violations []string
}

// Run stages the cluster for cfg, executes the scaling action under the
// schedule, and checks the invariants. The returned error covers harness
// infrastructure failures only — scaling aborts and invariant breaches
// are reported in the Result.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Logical clock: one tick per observation, shared by caches and
	// Master, so timestamps depend on operation order alone.
	var tick atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		return base.Add(time.Duration(tick.Add(1)) * time.Millisecond)
	}

	netw := faultnet.New(cfg.Seed)
	netw.SetEnabled(false) // staging is always fault-free

	names := make([]string, cfg.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%02d", i)
	}
	reg := agent.NewRegistry()
	caches := make(map[string]*cache.Cache, cfg.Nodes+1)
	agents := make(map[string]*agent.Agent, cfg.Nodes+1)
	addNode := func(name string) error {
		c, err := cache.New(cacheBytes, cache.WithClock(clock))
		if err != nil {
			return fmt.Errorf("cache %s: %w", name, err)
		}
		ag, err := agent.New(name, c, faultnet.WrapTransport(netw, name, reg))
		if err != nil {
			return fmt.Errorf("agent %s: %w", name, err)
		}
		reg.Register(ag)
		caches[name] = c
		agents[name] = ag
		return nil
	}
	for _, name := range names {
		if err := addNode(name); err != nil {
			return nil, err
		}
	}

	// Populate through the client's placement ring so every key starts on
	// its consistent-hash owner; value sizes spread items across slab
	// classes. Each SetBytes ticks the clock once, so MRU timestamps are
	// unique and reproducible.
	ring, err := hashring.New(names)
	if err != nil {
		return nil, err
	}
	valueSizes := []int{16, 40, 120, 300, 700, 1500}
	for i := 0; i < cfg.Nodes*cfg.Items; i++ {
		key := fmt.Sprintf("k%05d", i)
		owner, err := ring.Get(key)
		if err != nil {
			return nil, err
		}
		val := makeValue(key, valueSizes[rng.Intn(len(valueSizes))])
		if err := caches[owner].SetBytes([]byte(key), val, uint32(i%7), time.Time{}); err != nil {
			return nil, fmt.Errorf("populate %s on %s: %w", key, owner, err)
		}
	}

	// Draw the action and the fault plan. Gold runs execute these exact
	// draws too — the rng stream must not depend on cfg.Faults.
	scaleOut := rng.Float64() < 0.4
	victim := names[rng.Intn(cfg.Nodes)]
	plan := faultnet.Rule{
		Drop:      0.05 + 0.08*rng.Float64(),
		DropReply: 0.05 + 0.10*rng.Float64(),
		Dup:       0.04 + 0.08*rng.Float64(),
		Delay:     0.15 * rng.Float64(),
		MaxDelay:  200 * time.Microsecond,
	}
	focus := rng.Intn(3)
	netw.SetDefault(plan)
	switch focus {
	case 0:
		// Hammer the data plane: lost import replies force full re-pushes.
		netw.SetOpRule(faultnet.OpImportData, faultnet.Rule{
			DropReply: 0.35, Dup: 0.15, Delay: 0.1, MaxDelay: 200 * time.Microsecond,
		})
	case 1:
		// Hammer FuseCache replies: retries must serve the memoized takes.
		netw.SetOpRule(faultnet.OpComputeTakes, faultnet.Rule{
			DropReply: 0.35, Delay: 0.1, MaxDelay: 200 * time.Microsecond,
		})
	}

	// Stage hot-key replication before the pre-snapshot: promoted keys
	// with live replica copies exercise the owned-filter (replica-held
	// items must never be double-shipped) and the state-only membership
	// flip while the action runs. Staging draws nothing from rng, so gold
	// and faulty runs stage identically.
	newName := fmt.Sprintf("n%02d", cfg.Nodes)
	hot, err := stageHotKeys(names, caches, agents, scaleOut, victim, newName, cfg.Nodes*cfg.Items)
	if err != nil {
		return nil, err
	}

	added := ""
	if scaleOut {
		added = newName
		if err := addNode(added); err != nil {
			return nil, err
		}
		hot.addNode(added, caches[added], agents[added], names)
	}

	// Snapshot the pre-state and compute the oracle expectation from it.
	// Valid because phases 1–2 move only metadata: the data every agent
	// consults during FuseCache is exactly this state. Snapshots see each
	// node through its owned-filter, exactly as its agent does — replica
	// copies are invisible to the migration and to the oracle alike.
	pre := snapshotAll(caches, hot)
	var exp *expectation
	if scaleOut {
		exp, err = expectScaleOut(pre, names, added)
	} else {
		exp, err = expectScaleIn(pre, names, victim)
	}
	if err != nil {
		return nil, err
	}

	// The live stage interleaves deterministic client-style traffic with
	// the migration at the Master's phase hooks (see live.go).
	live := newLiveStage(caches, base)
	dir := faultnet.WrapDirectory(netw, "master", core.RegistryDirectory{Registry: reg})
	m, err := core.NewMaster(dir, names,
		core.WithClock(clock),
		core.WithWorkerLimit(1),
		core.WithRetry(taskgroup.Backoff{
			Attempts: 6, Delay: 200 * time.Microsecond, MaxDelay: time.Millisecond, Factor: 2,
		}),
		core.WithPhaseHook(live.hook),
	)
	if err != nil {
		return nil, err
	}
	// The flip must reach the replicators: Subscribe delivers the current
	// membership immediately (a no-op recompute) and the commit-time flip
	// later. Sorted order keeps delivery deterministic.
	for _, name := range hot.nodeNames() {
		m.Subscribe(hot.reps[name])
	}
	// Ownership announcements gate stale imports on the agents and feed the
	// live stage's routing. Sorted order keeps delivery deterministic.
	agentNames := make([]string, 0, len(agents))
	for name := range agents {
		agentNames = append(agentNames, name)
	}
	sort.Strings(agentNames)
	for _, name := range agentNames {
		m.SubscribeOwnership(agents[name])
	}
	m.SubscribeOwnership(live)

	netw.SetEnabled(cfg.Faults)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var report *core.ScaleReport
	var runErr error
	if scaleOut {
		report, runErr = m.ScaleOut(ctx, []string{added})
	} else {
		report, runErr = m.ScaleInNodes(ctx, []string{victim})
	}
	netw.SetEnabled(false) // the audit below must not draw new decisions

	res := &Result{
		Seed:      cfg.Seed,
		Direction: "in",
		Completed: runErr == nil,
		EventLog:  netw.Fingerprint(),
		Injected:  netw.InjectedCount(),
	}
	if scaleOut {
		res.Direction = "out"
	}
	if runErr != nil {
		res.Err = runErr.Error()
	}
	if report != nil {
		res.Aborted = report.Aborted
		res.ItemsMigrated = report.ItemsMigrated
		res.Retries = report.Retries
	}

	res.HotStaged = hot.staged()
	res.LiveWrites = len(live.order)
	rc := &runCtx{
		direction: res.Direction,
		victim:    victim,
		added:     added,
		initial:   names,
		caches:    caches,
		pre:       pre,
		exp:       exp,
		report:    report,
		master:    m,
		runErr:    runErr,
		hot:       hot,
		live:      live,
	}
	res.Violations = runChecks(rc)
	res.StateHash = stateHash(caches, m.Members())
	return res, nil
}

// makeValue builds a deterministic value of the given size tagged with its
// key, so a torn or cross-wired migration shows up as a digest mismatch.
func makeValue(key string, size int) []byte {
	v := make([]byte, size)
	seed := []byte(key)
	for i := range v {
		v[i] = seed[i%len(seed)] ^ byte(i)
	}
	return v
}
