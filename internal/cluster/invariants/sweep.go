package invariants

import (
	"fmt"
)

// SeedReport is the verdict for one seed: the faulty run's outcome plus
// the cross-run checks (determinism and gold-state idempotence).
type SeedReport struct {
	Seed      int64
	Direction string
	Completed bool
	Aborted   string
	Injected  int
	Migrated  int
	Retries   int
	// HotStaged counts the hot-key promotions live during the action.
	HotStaged int
	// LiveWrites counts the interleaved live-traffic keys written.
	LiveWrites int
	// Violations merges the in-run invariant breaches with the cross-run
	// determinism and I3 findings. Empty means the seed is clean.
	Violations []string
}

// CheckSeed runs one seed three times — faulty twice, gold once — and
// verifies that (a) the two faulty runs are bit-identical in fault
// schedule, outcome, and final state, and (b) a completed faulty run
// converges to exactly the gold run's state (invariant I3: at-least-once
// delivery composed with idempotent imports changes nothing).
func CheckSeed(seed int64, nodes, items int) (*SeedReport, error) {
	faulty := Config{Seed: seed, Nodes: nodes, Items: items, Faults: true}
	r1, err := Run(faulty)
	if err != nil {
		return nil, fmt.Errorf("seed %d run 1: %w", seed, err)
	}
	r2, err := Run(faulty)
	if err != nil {
		return nil, fmt.Errorf("seed %d run 2: %w", seed, err)
	}
	gold, err := Run(Config{Seed: seed, Nodes: nodes, Items: items, Faults: false})
	if err != nil {
		return nil, fmt.Errorf("seed %d gold run: %w", seed, err)
	}

	rep := &SeedReport{
		Seed:       seed,
		Direction:  r1.Direction,
		Completed:  r1.Completed,
		Aborted:    r1.Aborted,
		Injected:   r1.Injected,
		Migrated:   r1.ItemsMigrated,
		Retries:    r1.Retries,
		HotStaged:  r1.HotStaged,
		LiveWrites: r1.LiveWrites,
		Violations: append([]string(nil), r1.Violations...),
	}
	if r1.EventLog != r2.EventLog {
		rep.Violations = append(rep.Violations, "determinism: same seed produced different fault schedules")
	}
	if r1.StateHash != r2.StateHash {
		rep.Violations = append(rep.Violations, "determinism: same seed converged to different final states")
	}
	if r1.Completed != r2.Completed || r1.Aborted != r2.Aborted {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("determinism: outcomes differ (completed=%v/%v aborted=%q/%q)",
				r1.Completed, r2.Completed, r1.Aborted, r2.Aborted))
	}
	if !gold.Completed {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("gold run failed without faults: %s", gold.Err))
	}
	if len(gold.Violations) > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("gold run violated invariants: %v", gold.Violations))
	}
	if r1.Completed && gold.Completed && r1.StateHash != gold.StateHash {
		rep.Violations = append(rep.Violations,
			"I3: completed faulty run diverged from the fault-free state — a retry or duplicate was double-applied")
	}
	return rep, nil
}

// Sweep checks count seeds starting at base, logging one line per seed
// through logf (which may be nil). It returns the per-seed reports and
// whether every seed came back clean.
func Sweep(base int64, count, nodes, items int, logf func(format string, args ...any)) ([]*SeedReport, bool, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	clean := true
	reports := make([]*SeedReport, 0, count)
	for i := 0; i < count; i++ {
		seed := base + int64(i)
		rep, err := CheckSeed(seed, nodes, items)
		if err != nil {
			return reports, false, err
		}
		reports = append(reports, rep)
		status := "ok"
		if rep.Aborted != "" {
			status = "aborted:" + rep.Aborted
		}
		if len(rep.Violations) > 0 {
			clean = false
			status = fmt.Sprintf("VIOLATED(%d)", len(rep.Violations))
		}
		logf("seed %-4d dir=%-3s injected=%-4d migrated=%-4d retries=%-3d hot=%-2d live=%-2d %s",
			seed, rep.Direction, rep.Injected, rep.Migrated, rep.Retries, rep.HotStaged, rep.LiveWrites, status)
		for _, viol := range rep.Violations {
			logf("  seed %d: %s", seed, viol)
		}
	}
	return reports, clean, nil
}
