package invariants

// The five checked properties, each tied to the paper mechanism it guards:
//
//  I1 — No hot item selected by FuseCache is lost (Section III-D:
//       "migrate the hot data of that node to the rest of the Memcached
//       servers"). Every item the oracle's FuseCache selection picks must
//       reside on its target after a completed action, with its value and
//       MRU timestamp intact; a missing item is tolerated only when the
//       target evicted it as the coldest of its class.
//  I2 — Batch import preserves MRU order (Section V-A1: imports prepend
//       at the MRU head so "the migrated data is placed at the MRU end").
//       Within one sender's import set, per shard, list position must be
//       non-increasing in timestamp — a replayed or duplicated push that
//       re-hoists an item shows up here as an inversion.
//  I3 — Retries never double-apply (the RPC layer's at-least-once
//       delivery must compose with idempotent imports). Checked by the
//       sweep: a completed faulty run's final state must equal the gold
//       run's, byte for byte.
//  I4 — Reports are consistent with the observed cluster: a completed
//       report names the right membership and an ItemsMigrated consistent
//       with the oracle; an aborted report names a real phase, leaves the
//       membership untouched, and claims no migration before data moved.
//  I5 — The cluster converges to a consistent hash ring (Section III-A):
//       after completion every resident key sits on the ring owner the
//       final membership implies, and no key is resident twice.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fusecache"
	"repro/internal/hashring"
)

// itemInfo is one resident item's identity for comparisons.
type itemInfo struct {
	ts    time.Time
	class int
	vhash uint64
}

// nodeState is one node's snapshot: per-class MRU-ordered metadata plus a
// key index and the capacity numbers the oracle needs.
type nodeState struct {
	byClass map[int][]cache.ItemMeta
	keys    map[string]itemInfo
	absorb  map[int]int
	pages   int
	chunks  []int
}

// snapshot captures one node's state as seen through owned (nil = every
// resident item). The harness passes each node's hot-key owned-filter so
// replica-held copies — which the migration deliberately skips — stay
// invisible to the oracle and the checks, exactly as they are to the
// node's agent.
func snapshot(c *cache.Cache, owned func(string) bool) *nodeState {
	st := &nodeState{
		byClass: make(map[int][]cache.ItemMeta),
		keys:    make(map[string]itemInfo),
		absorb:  make(map[int]int),
		pages:   int(c.Capacity() / cache.PageSize),
		chunks:  c.ChunkSizes(),
	}
	for classID := range st.chunks {
		st.absorb[classID] = c.ClassAbsorbCapacity(classID)
	}
	for _, classID := range c.PopulatedClasses() {
		metas, err := c.DumpClass(classID, owned)
		if err != nil {
			continue
		}
		st.byClass[classID] = metas
		for _, mt := range metas {
			val, ok := c.Peek(mt.Key)
			if !ok {
				continue
			}
			st.keys[mt.Key] = itemInfo{ts: mt.LastAccess, class: classID, vhash: valueHash(val)}
		}
	}
	return st
}

func snapshotAll(caches map[string]*cache.Cache, hot *hotStage) map[string]*nodeState {
	out := make(map[string]*nodeState, len(caches))
	for name, c := range caches {
		out[name] = snapshot(c, hot.owned(name))
	}
	return out
}

func valueHash(v []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(v)
	return h.Sum64()
}

// minClassTS returns the coldest resident timestamp of the class (zero
// time when the class is empty). byClass lists are MRU-merged, so the
// minimum is the last entry.
func (st *nodeState) minClassTS(classID int) (time.Time, bool) {
	metas := st.byClass[classID]
	if len(metas) == 0 {
		return time.Time{}, false
	}
	return metas[len(metas)-1].LastAccess, true
}

// migrated is one oracle-expected transfer: the MRU-ordered items one
// sender ships to one target for one slab class.
type migrated struct {
	sender, target string
	class          int
	metas          []cache.ItemMeta
}

// expectation is the oracle's full prediction for the action.
type expectation struct {
	moved        []migrated
	total        int
	finalMembers []string
}

func toList(metas []cache.ItemMeta) fusecache.List {
	l := make(fusecache.List, len(metas))
	for i, m := range metas {
		l[i] = m.LastAccess.UnixNano()
	}
	return l
}

func sortedClasses(m map[int][]cache.ItemMeta) []int {
	out := make([]int, 0, len(m))
	for classID := range m {
		out = append(out, classID)
	}
	sort.Ints(out)
	return out
}

// expectScaleIn recomputes, centrally and fault-free, what the distributed
// phases 1–2 should decide: split the victim's metadata by consistent-hash
// target, run FuseCache per (target, class) against the target's own list
// with the same absorb capacity the agent would use, and take the winning
// head counts. Valid because phases 1–2 move no data — the agents consult
// exactly the snapshotted pre-state.
func expectScaleIn(pre map[string]*nodeState, members []string, victim string) (*expectation, error) {
	var retained []string
	for _, n := range members {
		if n != victim {
			retained = append(retained, n)
		}
	}
	sort.Strings(retained)
	ring, err := hashring.New(retained)
	if err != nil {
		return nil, err
	}
	offered := make(map[string]map[int][]cache.ItemMeta)
	vic := pre[victim]
	for _, classID := range sortedClasses(vic.byClass) {
		for _, mt := range vic.byClass[classID] {
			owner, err := ring.Get(mt.Key)
			if err != nil {
				return nil, err
			}
			if offered[owner] == nil {
				offered[owner] = make(map[int][]cache.ItemMeta)
			}
			offered[owner][classID] = append(offered[owner][classID], mt)
		}
	}
	exp := &expectation{finalMembers: retained}
	for _, target := range retained {
		byClass := offered[target]
		if len(byClass) == 0 {
			continue // no offer reaches this target: it reports ErrNoMetadata
		}
		tst := pre[target]
		for _, classID := range sortedClasses(byClass) {
			own := tst.byClass[classID]
			lists := []fusecache.List{toList(byClass[classID]), toList(own)}
			n := tst.absorb[classID]
			if n < len(own) {
				n = len(own)
			}
			res, err := fusecache.TopN(lists, n)
			if err != nil {
				return nil, fmt.Errorf("oracle fusecache class %d: %w", classID, err)
			}
			if take := res.Take[0]; take > 0 {
				exp.moved = append(exp.moved, migrated{
					sender: victim, target: target, class: classID,
					metas: byClass[classID][:take],
				})
				exp.total += take
			}
		}
	}
	return exp, nil
}

// expectScaleOut mirrors Agent.HashSplit: per existing member and class,
// the MRU prefix of the items remapping to the new node, capped at the
// newcomer's per-sender share of the class.
func expectScaleOut(pre map[string]*nodeState, members []string, added string) (*expectation, error) {
	full := append(append([]string(nil), members...), added)
	sort.Strings(full)
	ring, err := hashring.New(full)
	if err != nil {
		return nil, err
	}
	existing := len(members)
	exp := &expectation{finalMembers: full}
	senders := append([]string(nil), members...)
	sort.Strings(senders)
	for _, sender := range senders {
		st := pre[sender]
		for _, classID := range sortedClasses(st.byClass) {
			limit := st.pages * (cache.PageSize / st.chunks[classID]) / existing
			if limit < 1 {
				limit = 1
			}
			var sel []cache.ItemMeta
			for _, mt := range st.byClass[classID] {
				owner, err := ring.Get(mt.Key)
				if err != nil || owner != added {
					continue
				}
				if len(sel) >= limit {
					continue // beyond the newcomer's share: FuseCache cut-off
				}
				sel = append(sel, mt)
			}
			if len(sel) > 0 {
				exp.moved = append(exp.moved, migrated{sender: sender, target: added, class: classID, metas: sel})
				exp.total += len(sel)
			}
		}
	}
	return exp, nil
}

// runCtx bundles everything the checks compare.
type runCtx struct {
	direction string
	victim    string
	added     string
	initial   []string
	caches    map[string]*cache.Cache
	pre       map[string]*nodeState
	post      map[string]*nodeState
	exp       *expectation
	report    *core.ScaleReport
	master    *core.Master
	runErr    error
	hot       *hotStage
	live      *liveStage
}

// runChecks runs every applicable invariant and returns the violations.
func runChecks(rc *runCtx) []string {
	rc.post = snapshotAll(rc.caches, rc.hot)
	v := checkReport(rc)
	if rc.runErr == nil {
		v = append(v, checkSelectedSurvive(rc)...)
		v = append(v, checkImportOrder(rc)...)
		v = append(v, checkRing(rc)...)
		v = append(v, checkLive(rc)...)
	} else {
		v = append(v, checkAbortSafety(rc)...)
		if rc.live != nil {
			// Final-owner placement is meaningless after an abort, but the
			// mid-run read-plan assertions that did fire still count.
			v = append(v, rc.live.violations...)
		}
	}
	v = append(v, checkHotKeys(rc)...)
	return v
}

// checkSelectedSurvive is I1: every oracle-selected item must reside on
// its target with value and timestamp intact, unless the target provably
// evicted it as the coldest of its class.
func checkSelectedSurvive(rc *runCtx) []string {
	var v []string
	for _, mig := range rc.exp.moved {
		post := rc.post[mig.target]
		for _, mt := range mig.metas {
			info, ok := post.keys[mt.Key]
			if !ok {
				if rc.direction == "out" && rc.caches[mig.sender].Contains(mt.Key) {
					v = append(v, fmt.Sprintf("I1: %s expected on %s but still resident on %s", mt.Key, mig.target, mig.sender))
					continue
				}
				if min, populated := post.minClassTS(mig.class); populated && !min.Before(mt.LastAccess) {
					continue // evicted as the coldest of the class: legal
				}
				v = append(v, fmt.Sprintf("I1: hot item %s (class %d) selected for %s was lost", mt.Key, mig.class, mig.target))
				continue
			}
			if !info.ts.Equal(mt.LastAccess) {
				v = append(v, fmt.Sprintf("I1: %s on %s has timestamp %v, want %v", mt.Key, mig.target, info.ts, mt.LastAccess))
			}
			if want := rc.pre[mig.sender].keys[mt.Key].vhash; info.vhash != want {
				v = append(v, fmt.Sprintf("I1: %s on %s has corrupted value", mt.Key, mig.target))
			}
		}
	}
	return v
}

// checkImportOrder is I2: within one sender's import set, each target
// shard's list order must be non-increasing in timestamp — a replayed
// import that re-hoists an item to the MRU head breaks this.
func checkImportOrder(rc *runCtx) []string {
	var v []string
	for _, mig := range rc.exp.moved {
		keys := make(map[string]struct{}, len(mig.metas))
		for _, mt := range mig.metas {
			keys[mt.Key] = struct{}{}
		}
		shards, err := rc.caches[mig.target].ClassOrderByShard(mig.class)
		if err != nil {
			v = append(v, fmt.Sprintf("I2: dump %s class %d: %v", mig.target, mig.class, err))
			continue
		}
		for si, list := range shards {
			var prev time.Time
			prevKey := ""
			for _, it := range list { // head (MRU end) first
				if _, ok := keys[it.Key]; !ok {
					continue
				}
				if prevKey != "" && it.LastAccess.After(prev) {
					v = append(v, fmt.Sprintf("I2: MRU inversion on %s class %d shard %d: %s(%v) sits behind %s(%v)",
						mig.target, mig.class, si, it.Key, it.LastAccess, prevKey, prev))
				}
				prev, prevKey = it.LastAccess, it.Key
			}
		}
	}
	return v
}

// checkReport is I4: the ScaleReport must match the observed outcome.
func checkReport(rc *runCtx) []string {
	var v []string
	if rc.report == nil {
		if rc.runErr == nil {
			v = append(v, "I4: completed action returned no report")
		}
		return v
	}
	r := rc.report
	wantDir := rc.direction
	if r.Direction != wantDir {
		v = append(v, fmt.Sprintf("I4: report direction %q, want %q", r.Direction, wantDir))
	}
	if rc.runErr == nil {
		if r.Aborted != "" {
			v = append(v, fmt.Sprintf("I4: completed run reports aborted phase %q", r.Aborted))
		}
		if !equalStrings(r.Members, rc.exp.finalMembers) {
			v = append(v, fmt.Sprintf("I4: report members %v, want %v", r.Members, rc.exp.finalMembers))
		}
		if !equalStrings(rc.master.Members(), rc.exp.finalMembers) {
			v = append(v, fmt.Sprintf("I4: master members %v, want %v", rc.master.Members(), rc.exp.finalMembers))
		}
		if wantDir == "in" && r.ItemsMigrated != rc.exp.total {
			v = append(v, fmt.Sprintf("I4: report migrated %d items, oracle expects %d", r.ItemsMigrated, rc.exp.total))
		}
		// Scale-out replays can legitimately under-report: a lost HashSplit
		// reply makes the retry find the already-moved (and locally deleted)
		// keys gone, so the last attempt counts less than actually moved.
		if wantDir == "out" && r.ItemsMigrated > rc.exp.total {
			v = append(v, fmt.Sprintf("I4: report migrated %d items, oracle cap is %d", r.ItemsMigrated, rc.exp.total))
		}
		return v
	}
	valid := map[string]bool{"metadata": true, "fusecache": true, "data": true}
	if wantDir == "out" {
		valid = map[string]bool{"hashsplit": true}
	}
	if !valid[r.Aborted] {
		v = append(v, fmt.Sprintf("I4: aborted run names phase %q, not a %s-scaling phase", r.Aborted, wantDir))
	}
	if !equalStrings(rc.master.Members(), sortedCopy(rc.initial)) {
		v = append(v, fmt.Sprintf("I4: abort changed membership to %v", rc.master.Members()))
	}
	if (r.Aborted == "metadata" || r.Aborted == "fusecache") && r.ItemsMigrated != 0 {
		v = append(v, fmt.Sprintf("I4: aborted in %s yet reports %d items migrated", r.Aborted, r.ItemsMigrated))
	}
	return v
}

// checkAbortSafety is I1's abort side: a clean abort must lose nothing.
// Scale-in never removes data from the victim; hash-split deletes a local
// copy only after its full stream landed on the newcomer.
func checkAbortSafety(rc *runCtx) []string {
	var v []string
	if rc.direction == "in" {
		post := rc.post[rc.victim]
		for key, info := range rc.pre[rc.victim].keys {
			got, ok := post.keys[key]
			if !ok {
				v = append(v, fmt.Sprintf("I1: aborted scale-in lost %s from retiring node %s", key, rc.victim))
				continue
			}
			if got.vhash != info.vhash {
				v = append(v, fmt.Sprintf("I1: aborted scale-in corrupted %s on %s", key, rc.victim))
			}
		}
		return v
	}
	addedPost := rc.post[rc.added]
	for _, sender := range rc.initial {
		post := rc.post[sender]
		for key, info := range rc.pre[sender].keys {
			if got, ok := post.keys[key]; ok {
				if got.vhash != info.vhash {
					v = append(v, fmt.Sprintf("I1: aborted scale-out corrupted %s on %s", key, sender))
				}
				continue
			}
			got, ok := addedPost.keys[key]
			if !ok {
				v = append(v, fmt.Sprintf("I1: aborted scale-out lost %s (gone from %s, absent on %s)", key, sender, rc.added))
				continue
			}
			if got.vhash != info.vhash {
				v = append(v, fmt.Sprintf("I1: aborted scale-out corrupted %s on %s", key, rc.added))
			}
		}
	}
	return v
}

// checkRing is I5: after completion the membership converges and every
// guaranteed-remapped key sits on its consistent-hash owner, with no key
// resident on two members.
func checkRing(rc *runCtx) []string {
	var v []string
	final := rc.master.Members()
	ring, err := hashring.New(final)
	if err != nil {
		return []string{fmt.Sprintf("I5: final membership %v invalid: %v", final, err)}
	}
	holder := make(map[string]string)
	for _, node := range final {
		for key := range rc.post[node].keys {
			if other, dup := holder[key]; dup {
				v = append(v, fmt.Sprintf("I5: %s resident on both %s and %s", key, other, node))
				continue
			}
			holder[key] = node
		}
	}
	if rc.direction == "in" {
		// Removing a member remaps only its own keys, so every surviving
		// resident key must sit on its ring owner.
		for key, node := range holder {
			if owner, err := ring.Get(key); err != nil || owner != node {
				v = append(v, fmt.Sprintf("I5: %s resident on %s, ring owner is %s", key, node, owner))
			}
		}
		return v
	}
	// Scale-out: existing members may legitimately keep remapped keys that
	// exceeded the newcomer's share, but everything ON the newcomer must be
	// owned by it.
	for key := range rc.post[rc.added].keys {
		if owner, err := ring.Get(key); err != nil || owner != rc.added {
			v = append(v, fmt.Sprintf("I5: %s resident on new node %s, ring owner is %s", key, rc.added, owner))
		}
	}
	return v
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}

// stateHash digests the cluster's externally observable state — the
// membership plus every member's resident (key, timestamp, class, value)
// set. Two runs that converge to the same state hash identically; MRU
// positions are deliberately excluded (I2 checks order structurally).
func stateHash(caches map[string]*cache.Cache, members []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "members|%v\n", members)
	for _, node := range sortedCopy(members) {
		st := snapshot(caches[node], nil)
		keys := make([]string, 0, len(st.keys))
		for k := range st.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			info := st.keys[k]
			fmt.Fprintf(h, "%s|%s|%d|%d|%016x\n", node, k, info.ts.UnixNano(), info.class, info.vhash)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
