package invariants

import (
	"fmt"
	"sort"

	"repro/internal/agent"
	"repro/internal/cache"
	"repro/internal/hashring"
	"repro/internal/hotkey"
)

// hotStage is the staged hot-key replication state threaded through a
// harness run: one replicator per node wired to an in-process pusher,
// plus the promoted keys and their expected fate across the membership
// flip. Staging is purely deterministic (first-match key scan, no rng),
// so gold and faulty runs stage identically.
type hotStage struct {
	reps   map[string]*hotkey.Replicator
	pusher *hotkey.LocalPusher
	// survive maps promoted key → home node whose promotion must outlive
	// the flip (the home stays a member and keeps owning the key).
	survive map[string]string
	// dropped maps promoted key → home node that must drop the promotion
	// at the flip (scale-out remaps the key to the new node).
	dropped map[string]string
	// victimHeld lists promoted keys whose replica copy sits on the
	// scale-in victim — copies the owned-filter must keep the retiring
	// agent from double-shipping.
	victimHeld []string
}

// hotPromotionsPerKind bounds how many keys each staged situation gets.
const hotPromotionsPerKind = 2

// stageHotKeys builds a replicator per current node, installs the
// owned-filters on the agents, and force-promotes a handful of
// deterministically chosen keys so the scaling action runs with live
// replicated state. Promotion homes are always nodes that remain members:
// for scale-in the interesting copies are the ones the VICTIM holds as a
// replica (its agent must not ship them when it retires); for scale-out
// they are the promoted keys that remap to the newcomer (the home ships
// its owned copy and must drop the promotion at the flip).
func stageHotKeys(names []string, caches map[string]*cache.Cache, agents map[string]*agent.Agent,
	scaleOut bool, victim, added string, totalItems int) (*hotStage, error) {
	hs := &hotStage{
		reps:    make(map[string]*hotkey.Replicator, len(names)+1),
		pusher:  hotkey.NewLocalPusher(),
		survive: make(map[string]string),
		dropped: make(map[string]string),
	}
	for _, name := range names {
		hs.addNode(name, caches[name], agents[name], names)
	}

	ring, err := hashring.New(names)
	if err != nil {
		return nil, err
	}
	var postRing *hashring.Ring
	if scaleOut {
		postRing, err = hashring.New(append(sortedCopy(names), added))
	} else {
		var retained []string
		for _, n := range names {
			if n != victim {
				retained = append(retained, n)
			}
		}
		postRing, err = hashring.New(retained)
	}
	if err != nil {
		return nil, err
	}

	for i := 0; i < totalItems; i++ {
		key := fmt.Sprintf("k%05d", i)
		home, err := ring.Get(key)
		if err != nil {
			return nil, err
		}
		if !scaleOut && home == victim {
			continue // homes must survive the action
		}
		set, err := ring.GetN(key, 2)
		if err != nil || len(set) < 2 {
			continue
		}
		replica := set[1]

		if scaleOut {
			postOwner, err := postRing.Get(key)
			if err != nil {
				return nil, err
			}
			switch {
			case postOwner == added && len(hs.dropped) < hotPromotionsPerKind:
				if err := hs.reps[home].Promote(key); err != nil {
					return nil, fmt.Errorf("stage promote %s on %s: %w", key, home, err)
				}
				hs.dropped[key] = home
			case postOwner != added && len(hs.survive) < hotPromotionsPerKind:
				if err := hs.reps[home].Promote(key); err != nil {
					return nil, fmt.Errorf("stage promote %s on %s: %w", key, home, err)
				}
				hs.survive[key] = home
			}
			if len(hs.dropped) >= hotPromotionsPerKind && len(hs.survive) >= hotPromotionsPerKind {
				break
			}
			continue
		}

		switch {
		case replica == victim && len(hs.victimHeld) < hotPromotionsPerKind:
			if err := hs.reps[home].Promote(key); err != nil {
				return nil, fmt.Errorf("stage promote %s on %s: %w", key, home, err)
			}
			hs.survive[key] = home
			hs.victimHeld = append(hs.victimHeld, key)
		case replica != victim && len(hs.survive)-len(hs.victimHeld) < hotPromotionsPerKind:
			if err := hs.reps[home].Promote(key); err != nil {
				return nil, fmt.Errorf("stage promote %s on %s: %w", key, home, err)
			}
			hs.survive[key] = home
		}
		if len(hs.victimHeld) >= hotPromotionsPerKind &&
			len(hs.survive) >= 2*hotPromotionsPerKind {
			break
		}
	}
	return hs, nil
}

// addNode wires one node into the stage: a replicator over the node's
// cache, a pusher registration so it can receive replica copies, and the
// owned-filter on its agent.
func (hs *hotStage) addNode(name string, c *cache.Cache, ag *agent.Agent, members []string) {
	rep := hotkey.New(name, c, hs.pusher, hotkey.Config{Replicas: 2})
	rep.MembershipChanged(members)
	hs.pusher.Register(name, hotkey.LocalNode{Store: c, Rep: rep})
	ag.SetOwnedFilter(rep.OwnedFilter())
	hs.reps[name] = rep
}

// owned returns the node's migration-ownership filter (nil = everything).
func (hs *hotStage) owned(name string) func(string) bool {
	if hs == nil {
		return nil
	}
	if rep := hs.reps[name]; rep != nil {
		return rep.OwnedFilter()
	}
	return nil
}

// nodeNames lists the staged nodes sorted, for deterministic iteration.
func (hs *hotStage) nodeNames() []string {
	out := make([]string, 0, len(hs.reps))
	for name := range hs.reps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// staged counts the promotions installed.
func (hs *hotStage) staged() int { return len(hs.survive) + len(hs.dropped) }

// checkHotKeys verifies the replication properties around the flip:
// promotions whose home keeps owning the key survive the state-only flip,
// promotions remapped to the newcomer are dropped, and an aborted action
// (no flip) leaves every staged promotion in place.
func checkHotKeys(rc *runCtx) []string {
	hs := rc.hot
	if hs == nil {
		return nil
	}
	promoted := func(home, key string) bool {
		for _, k := range hs.reps[home].Promoted() {
			if k == key {
				return true
			}
		}
		return false
	}
	var v []string
	if rc.runErr != nil {
		for _, key := range sortedKeys(hs.survive) {
			if !promoted(hs.survive[key], key) {
				v = append(v, fmt.Sprintf("HK: aborted run lost promotion of %s on %s", key, hs.survive[key]))
			}
		}
		for _, key := range sortedKeys(hs.dropped) {
			if !promoted(hs.dropped[key], key) {
				v = append(v, fmt.Sprintf("HK: aborted run lost promotion of %s on %s", key, hs.dropped[key]))
			}
		}
		return v
	}
	for _, key := range sortedKeys(hs.survive) {
		if !promoted(hs.survive[key], key) {
			v = append(v, fmt.Sprintf("HK: promotion of %s on %s did not survive the membership flip", key, hs.survive[key]))
		}
	}
	for _, key := range sortedKeys(hs.dropped) {
		if promoted(hs.dropped[key], key) {
			v = append(v, fmt.Sprintf("HK: %s on %s remapped to the new node but is still promoted", key, hs.dropped[key]))
		}
	}
	return v
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
