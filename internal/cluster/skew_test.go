package cluster

import (
	"testing"
)

// TestSkewSpread is the acceptance gate for hot-key replication: under an
// adversarial Zipf-extreme workload whose hottest ranks all home on one
// node, enabling replication must cut the max-node/mean-node served-op
// ratio at least 2x versus the unreplicated baseline.
func TestSkewSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("drives tens of thousands of loopback requests")
	}
	opts := SkewOptions{
		Nodes:     4,
		Theta:     1.2,
		Keys:      1024,
		HotSpan:   16,
		WarmupOps: 8000,
		Ops:       12000,
		Seed:      1,
	}

	off, err := RunSkew(opts)
	if err != nil {
		t.Fatal(err)
	}
	on := opts
	on.Replication = SkewReplicationConfig(opts.Nodes)
	onRep, err := RunSkew(on)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("replication off: max/mean=%.2f p99=%v node-ops=%v", off.MaxOverMean, off.P99, off.NodeOps)
	t.Logf("replication on:  max/mean=%.2f p99=%v node-ops=%v promoted=%d replica-reads=%d",
		onRep.MaxOverMean, onRep.P99, onRep.NodeOps, onRep.Promoted, onRep.ReplicaReads)

	if off.MaxOverMean < 1.5 {
		t.Fatalf("baseline not skewed enough to test: max/mean = %.2f, want >= 1.5", off.MaxOverMean)
	}
	if onRep.Promoted == 0 {
		t.Fatal("replication run promoted nothing — detection failed")
	}
	if gain := off.MaxOverMean / onRep.MaxOverMean; gain < 2.0 {
		t.Fatalf("spread gain = %.2fx (off %.2f, on %.2f), want >= 2x",
			gain, off.MaxOverMean, onRep.MaxOverMean)
	}
}

// TestSkewFlashCrowd runs the flash-crowd scenario: half of all reads hit
// one key. Replication must still spread the load (the crowd key is
// promoted and served by every node in its replica set).
func TestSkewFlashCrowd(t *testing.T) {
	if testing.Short() {
		t.Skip("drives tens of thousands of loopback requests")
	}
	opts := SkewOptions{
		Nodes:      4,
		Theta:      1.2,
		Keys:       1024,
		HotSpan:    16,
		WarmupOps:  6000,
		Ops:        9000,
		Seed:       2,
		FlashCrowd: true,
	}

	off, err := RunSkew(opts)
	if err != nil {
		t.Fatal(err)
	}
	on := opts
	on.Replication = SkewReplicationConfig(opts.Nodes)
	onRep, err := RunSkew(on)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("flash crowd off: max/mean=%.2f node-ops=%v", off.MaxOverMean, off.NodeOps)
	t.Logf("flash crowd on:  max/mean=%.2f node-ops=%v promoted=%d", onRep.MaxOverMean, onRep.NodeOps, onRep.Promoted)

	if off.MaxOverMean < 1.5 {
		t.Fatalf("baseline not skewed enough to test: max/mean = %.2f, want >= 1.5", off.MaxOverMean)
	}
	if gain := off.MaxOverMean / onRep.MaxOverMean; gain < 2.0 {
		t.Fatalf("spread gain = %.2fx (off %.2f, on %.2f), want >= 2x",
			gain, off.MaxOverMean, onRep.MaxOverMean)
	}
}
