package cluster

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cache"
)

func startTest(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := StartLocal(Config{Nodes: nodes, NodeMemory: 4 * cache.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestStartLocalDefaults(t *testing.T) {
	c, err := StartLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if got := len(c.Members()); got != 3 {
		t.Fatalf("default members = %d, want 3", got)
	}
}

func TestSetGetThroughBox(t *testing.T) {
	c := startTest(t, 3)
	cl := c.Client()
	for i := 0; i < 100; i++ {
		if err := cl.Set(fmt.Sprintf("key-%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.TotalItems(); got != 100 {
		t.Fatalf("TotalItems = %d, want 100", got)
	}
	v, ok, err := cl.Get("key-042")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
}

func TestScaleInPreservesDataAndFlipsClient(t *testing.T) {
	c := startTest(t, 4)
	cl := c.Client()
	const keys = 500
	for i := 0; i < keys; i++ {
		if err := cl.Set(fmt.Sprintf("key-%04d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	report, err := c.ScaleIn(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.ItemsMigrated == 0 {
		t.Fatal("nothing migrated")
	}
	if got := len(c.Members()); got != 3 {
		t.Fatalf("members = %d, want 3", got)
	}
	if got := len(cl.Members()); got != 3 {
		t.Fatalf("client members = %d, want 3", got)
	}
	// Every key still served through the client — zero cold misses.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%04d", i)
		if _, ok, err := cl.Get(key); err != nil || !ok {
			t.Fatalf("key %s lost after scale-in: %v, %v", key, ok, err)
		}
	}
	// The retired node is gone: its cache is no longer reachable.
	if _, err := c.Node(report.Retiring[0]); err == nil {
		t.Fatal("retired node still tracked")
	}
}

func TestScaleOutAddsServingNode(t *testing.T) {
	c := startTest(t, 2)
	cl := c.Client()
	const keys = 300
	for i := 0; i < keys; i++ {
		if err := cl.Set(fmt.Sprintf("key-%04d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	report, err := c.ScaleOut(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Added) != 1 || report.ItemsMigrated == 0 {
		t.Fatalf("report = %+v", report)
	}
	if got := len(c.Members()); got != 3 {
		t.Fatalf("members = %d, want 3", got)
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%04d", i)
		if _, ok, err := cl.Get(key); err != nil || !ok {
			t.Fatalf("key %s lost after scale-out: %v, %v", key, ok, err)
		}
	}
	newCache, err := c.Node(report.Added[0])
	if err != nil {
		t.Fatal(err)
	}
	if newCache.Len() == 0 {
		t.Fatal("new node received nothing")
	}
}

func TestScaleRoundTrip(t *testing.T) {
	c := startTest(t, 3)
	cl := c.Client()
	for i := 0; i < 200; i++ {
		if err := cl.Set(fmt.Sprintf("key-%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.ScaleIn(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScaleOut(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Members()); got != 3 {
		t.Fatalf("members = %d after round trip", got)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%04d", i)
		if _, ok, err := cl.Get(key); err != nil || !ok {
			t.Fatalf("key %s lost in round trip", key)
		}
	}
}

func TestClosedClusterRejectsOps(t *testing.T) {
	c := startTest(t, 2)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScaleIn(context.Background(), 1); err != ErrClosed {
		t.Fatalf("ScaleIn on closed = %v, want ErrClosed", err)
	}
	if _, err := c.ScaleOut(context.Background(), 1); err != ErrClosed {
		t.Fatalf("ScaleOut on closed = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("Close not idempotent")
	}
}

func TestScaleOutValidation(t *testing.T) {
	c := startTest(t, 2)
	if _, err := c.ScaleOut(context.Background(), 0); err == nil {
		t.Fatal("ScaleOut(0) succeeded")
	}
}

func TestNodeLookup(t *testing.T) {
	c := startTest(t, 2)
	members := c.Members()
	if _, err := c.Node(members[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node("ghost"); err == nil {
		t.Fatal("ghost node found")
	}
}
