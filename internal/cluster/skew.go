package cluster

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/hotkey"
	"repro/internal/workload"
)

// SkewOptions parameterizes RunSkew, the hot-key load-spread experiment: a
// live in-process cluster serving a Zipf-extreme (and optionally
// flash-crowd) read workload whose hottest ranks are adversarially
// remapped onto a single victim node, with hot-key replication on or off.
type SkewOptions struct {
	// Nodes is the tier size (default 4).
	Nodes int
	// Theta is the Zipf skew parameter (default 1.2 — Zipf-extreme).
	Theta float64
	// Keys is the keyspace size (default 2048).
	Keys uint64
	// HotSpan is how many top ranks are remapped onto the victim node, the
	// adversarial worst case for consistent hashing (default 16).
	HotSpan uint64
	// WarmupOps drives detection before measurement starts (default Ops/2).
	WarmupOps int
	// Ops is the measured read count (default 20000).
	Ops int
	// ValueSize is the stored value size in bytes (default 64).
	ValueSize int
	// Seed seeds the workload generator (default 1).
	Seed int64
	// FlashCrowd, when true, layers a flash crowd on the Zipf draw: a
	// CrowdFraction share of all reads hit the single hottest key.
	FlashCrowd bool
	// CrowdFraction is the flash-crowd share of reads (default 0.5).
	CrowdFraction float64
	// Replication, when non-nil, enables hot-key replication with this
	// configuration. Nil measures the unreplicated baseline.
	Replication *hotkey.Config
}

func (o SkewOptions) withDefaults() SkewOptions {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Theta == 0 {
		o.Theta = 1.2
	}
	if o.Keys == 0 {
		o.Keys = 2048
	}
	if o.HotSpan == 0 {
		o.HotSpan = 16
	}
	if o.Ops <= 0 {
		o.Ops = 20000
	}
	if o.WarmupOps <= 0 {
		o.WarmupOps = o.Ops / 2
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CrowdFraction == 0 {
		o.CrowdFraction = 0.5
	}
	return o
}

// SkewReport is one RunSkew measurement.
type SkewReport struct {
	// Scenario is "zipf" or "flash-crowd".
	Scenario string
	// Replication records whether hot-key replication was enabled.
	Replication bool
	// NodeOps is the measured read count served per node (hits + misses
	// observed by each node's cache during the measurement window).
	NodeOps map[string]uint64
	// MaxOverMean is the load-spread headline: the hottest node's op count
	// over the per-node mean. 1.0 is a perfectly even tier; Nodes is the
	// worst case (everything on one node).
	MaxOverMean float64
	// P99 is the client-observed p99 read latency.
	P99 time.Duration
	// Promoted is the total number of promoted keys across the tier at the
	// end of the run; ReplicaReads counts sampled reads served from
	// replica-held copies.
	Promoted     int
	ReplicaReads int64
}

// RunSkew boots a cluster, preloads the keyspace, drives the skewed read
// workload through the adaptive client, and reports the per-node load
// spread. The hottest HotSpan ranks are renamed so that consistent hashing
// homes all of them on one victim node — without replication the victim
// serves the whole hot set; with replication the promoted keys spread
// across their replica sets.
func RunSkew(opts SkewOptions) (*SkewReport, error) {
	opts = opts.withDefaults()
	c, err := StartLocal(Config{Nodes: opts.Nodes, HotKeys: opts.Replication})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	cl := c.Client()

	members := c.Members()
	sort.Strings(members)
	victim := members[0]

	// Name table: top ranks get names that hash to the victim, the rest
	// keep their canonical names (landing wherever the ring puts them).
	names := make([]string, opts.Keys)
	for rank := uint64(0); rank < opts.Keys; rank++ {
		if rank < opts.HotSpan {
			names[rank], err = nameOwnedBy(cl, victim, rank)
			if err != nil {
				return nil, err
			}
		} else {
			names[rank] = workload.KeyName(rank)
		}
	}

	value := make([]byte, opts.ValueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	for _, name := range names {
		if err := cl.Set(name, value); err != nil {
			return nil, fmt.Errorf("preload %s: %w", name, err)
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	var draw func() uint64
	scenario := "zipf"
	if opts.FlashCrowd {
		scenario = "flash-crowd"
		fc, err := workload.NewFlashCrowd(rng, opts.Theta, opts.Keys, 0, opts.CrowdFraction, 0, 0)
		if err != nil {
			return nil, err
		}
		draw = fc.Next
	} else {
		z, err := workload.NewZipf(rng, opts.Theta, opts.Keys)
		if err != nil {
			return nil, err
		}
		draw = z.Next
	}

	ctx := context.Background()
	// Warmup: feed the detectors, tick promotion, refresh client routing.
	// The same loop runs with replication off so both arms measure against
	// identically warmed caches.
	tickEvery := opts.WarmupOps/4 + 1
	for i := 0; i < opts.WarmupOps; i++ {
		if _, _, err := cl.Get(names[draw()]); err != nil {
			return nil, fmt.Errorf("warmup get: %w", err)
		}
		if (i+1)%tickEvery == 0 {
			c.TickHotKeys()
			if err := cl.RefreshHotKeys(ctx); err != nil {
				return nil, err
			}
		}
	}
	c.TickHotKeys()
	if err := cl.RefreshHotKeys(ctx); err != nil {
		return nil, err
	}

	base, err := nodeReadCounts(cl)
	if err != nil {
		return nil, err
	}
	lat := make([]time.Duration, opts.Ops)
	for i := 0; i < opts.Ops; i++ {
		start := time.Now()
		if _, _, err := cl.Get(names[draw()]); err != nil {
			return nil, fmt.Errorf("measured get: %w", err)
		}
		lat[i] = time.Since(start)
	}
	after, err := nodeReadCounts(cl)
	if err != nil {
		return nil, err
	}

	rep := &SkewReport{
		Scenario:    scenario,
		Replication: opts.Replication != nil,
		NodeOps:     make(map[string]uint64, len(members)),
	}
	var total, max uint64
	for _, m := range members {
		d := after[m] - base[m]
		rep.NodeOps[m] = d
		total += d
		if d > max {
			max = d
		}
	}
	mean := float64(total) / float64(len(members))
	if mean > 0 {
		rep.MaxOverMean = float64(max) / mean
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.P99 = lat[len(lat)*99/100]

	for _, m := range members {
		if hot := c.HotKeys(m); hot != nil {
			cs := hot.Snapshot()
			rep.Promoted += cs.Promoted
			rep.ReplicaReads += cs.ReplicaReads
		}
	}
	return rep, nil
}

// nameOwnedBy probes candidate names until one hashes to the wanted owner.
func nameOwnedBy(cl ownerLookup, owner string, rank uint64) (string, error) {
	for i := 0; ; i++ {
		name := "skewhot-" + strconv.FormatUint(rank, 10) + "-" + strconv.Itoa(i)
		got, err := cl.Owner(name)
		if err != nil {
			return "", err
		}
		if got == owner {
			return name, nil
		}
		if i > 10000 {
			return "", fmt.Errorf("no candidate name for rank %d owned by %s", rank, owner)
		}
	}
}

type ownerLookup interface {
	Owner(key string) (string, error)
}

type statsAller interface {
	StatsAll() (map[string]map[string]string, error)
	Members() []string
}

// nodeReadCounts snapshots each node's served read count (cache hits plus
// misses) from its wire stats.
func nodeReadCounts(cl statsAller) (map[string]uint64, error) {
	stats, err := cl.StatsAll()
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64, len(stats))
	for node, st := range stats {
		hits, _ := strconv.ParseUint(st["get_hits"], 10, 64)
		misses, _ := strconv.ParseUint(st["get_misses"], 10, 64)
		out[node] = hits + misses
	}
	return out, nil
}

// SkewReplicationConfig is the hot-key configuration the skew experiment
// (and `make bench-skew`) uses for its replication-on arm: aggressive
// sampling and a low promotion threshold so a short run detects the hot
// set, and a full-tier replica fan-out to maximize spread.
func SkewReplicationConfig(nodes int) *hotkey.Config {
	return &hotkey.Config{
		Capacity:       256,
		SampleRate:     4,
		TopK:           32,
		ShareThreshold: 0.01,
		Replicas:       nodes,
		MinSamples:     64,
		CooldownTicks:  3,
	}
}

// RenderSkew runs the paired off/on measurement for one scenario and
// writes the comparison table.
func RenderSkew(w io.Writer, opts SkewOptions) error {
	opts.Replication = nil
	off, err := RunSkew(opts)
	if err != nil {
		return err
	}
	on := opts
	on.Replication = SkewReplicationConfig(off.nodes())
	onRep, err := RunSkew(on)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "scenario=%s nodes=%d theta=%.2f keys=%d hot-span=%d ops=%d\n",
		off.Scenario, len(off.NodeOps), opts.Theta, opts.Keys, opts.HotSpan, opts.Ops)
	fmt.Fprintf(w, "%-14s %14s %14s\n", "", "replication=off", "replication=on")
	fmt.Fprintf(w, "%-14s %14.2f %14.2f\n", "max/mean", off.MaxOverMean, onRep.MaxOverMean)
	fmt.Fprintf(w, "%-14s %14s %14s\n", "p99", off.P99.Round(time.Microsecond), onRep.P99.Round(time.Microsecond))
	fmt.Fprintf(w, "%-14s %14d %14d\n", "promoted", off.Promoted, onRep.Promoted)
	fmt.Fprintf(w, "%-14s %14d %14d\n", "replica-reads", off.ReplicaReads, onRep.ReplicaReads)
	if onRep.MaxOverMean > 0 {
		fmt.Fprintf(w, "%-14s %29.2fx\n", "spread-gain", off.MaxOverMean/onRep.MaxOverMean)
	}
	return nil
}

func (r *SkewReport) nodes() int { return len(r.NodeOps) }
