package costmodel

import (
	"errors"
	"math"
	"testing"
)

func TestPeakPowerMatchesPaper(t *testing.T) {
	m := DefaultPowerModel
	app := m.PeakPower(AppNode)
	if math.Abs(app-204) > 2 {
		t.Fatalf("app node power %.1f W, paper reports ≈204 W", app)
	}
	mc := m.PeakPower(MemcachedNode)
	if math.Abs(mc-299) > 2 {
		t.Fatalf("memcached node power %.1f W, paper reports ≈299 W", mc)
	}
}

func TestPowerOverheadMatchesPaper(t *testing.T) {
	got := DefaultPowerModel.PowerOverheadPercent(AppNode, MemcachedNode)
	// Paper: "47% additional power".
	if got < 44 || got > 50 {
		t.Fatalf("power overhead %.1f%%, paper reports ≈47%%", got)
	}
}

func TestCostOverheadMatchesPaper(t *testing.T) {
	got := CostOverheadPercent(AppNode, MemcachedNode)
	// Paper: "$0.166/hr, 66% higher cost" vs $0.10/hr.
	if got < 64 || got > 68 {
		t.Fatalf("cost overhead %.1f%%, paper reports ≈66%%", got)
	}
	if CostOverheadPercent(NodeSpec{}, MemcachedNode) != 0 {
		t.Fatal("zero-cost base must yield 0")
	}
}

func TestNodeSpecValidate(t *testing.T) {
	bad := []NodeSpec{
		{Sockets: 0, MemoryGB: 10},
		{Sockets: 1, MemoryGB: 0},
		{Sockets: 1, MemoryGB: 10, HourlyCost: -1},
	}
	for i, n := range bad {
		if err := n.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("spec %d: err = %v, want ErrBadConfig", i, err)
		}
	}
	if err := AppNode.Validate(); err != nil {
		t.Fatalf("AppNode invalid: %v", err)
	}
}

func TestElasticSavings(t *testing.T) {
	// A tier that needs 10 nodes at peak but averages 5 saves 50%.
	counts := []int{10, 8, 5, 3, 3, 3, 3, 5}
	tc, err := ElasticSavings(counts, MemcachedNode, DefaultPowerModel)
	if err != nil {
		t.Fatal(err)
	}
	if tc.StaticNodes != 10 {
		t.Fatalf("StaticNodes = %v, want 10", tc.StaticNodes)
	}
	wantMean := 5.0
	if math.Abs(tc.MeanNodes-wantMean) > 0.01 {
		t.Fatalf("MeanNodes = %v, want %v", tc.MeanNodes, wantMean)
	}
	if tc.SavingsPercent < 49 || tc.SavingsPercent > 51 {
		t.Fatalf("SavingsPercent = %v, want ≈50", tc.SavingsPercent)
	}
	if tc.HourlySavings <= 0 || tc.PowerSavingsWatts <= 0 {
		t.Fatalf("savings not positive: %+v", tc)
	}
	// Paper's Section II-C band is 30–70% for its traces; this synthetic
	// series sits inside it.
	if tc.SavingsPercent < 30 || tc.SavingsPercent > 70 {
		t.Fatalf("savings %.0f%% outside the paper's 30–70%% band", tc.SavingsPercent)
	}
}

func TestElasticSavingsValidation(t *testing.T) {
	if _, err := ElasticSavings(nil, MemcachedNode, DefaultPowerModel); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig for empty series")
	}
	if _, err := ElasticSavings([]int{1, -1}, MemcachedNode, DefaultPowerModel); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig for negative count")
	}
	if _, err := ElasticSavings([]int{1}, NodeSpec{}, DefaultPowerModel); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig for bad spec")
	}
}
