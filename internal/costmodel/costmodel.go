// Package costmodel reproduces the ElMem paper's cost/energy analysis of
// Memcached (Section II-B): normalizing Fan et al.'s server power numbers
// to per-GB and per-CPU-socket terms, a Facebook-style Memcached node
// (1 socket, 72 GB) draws ~47% more power than an application-tier node
// (2 sockets, 12 GB), and a memory-optimized EC2 instance costs ~66% more
// than a compute-optimized one — the economics that motivate elasticity.
package costmodel

import (
	"errors"
	"fmt"
)

// ErrBadConfig reports invalid model parameters.
var ErrBadConfig = errors.New("costmodel: invalid configuration")

// PowerModel holds per-component peak-power coefficients normalized from
// Fan et al. (ISCA 2007), as the paper does.
type PowerModel struct {
	// WattsPerSocket is peak power per CPU socket.
	WattsPerSocket float64
	// WattsPerGB is peak power per GB of DRAM.
	WattsPerGB float64
	// BaseWatts covers chassis, disks, and fans.
	BaseWatts float64
}

// DefaultPowerModel is calibrated so the paper's two node types land on
// its reported 204 W (app) and 299 W (Memcached) peak draws:
//
//	app node:      2 sockets, 12 GB → 2·s + 12·g + b = 204
//	memcached:     1 socket, 72 GB  → 1·s + 72·g + b = 299
//
// Fixing the DRAM coefficient at a Fan-et-al-plausible 2.625 W/GB solves
// the system exactly: s = 62.5 W/socket, b = 47.5 W.
var DefaultPowerModel = PowerModel{
	WattsPerSocket: 62.5,
	WattsPerGB:     2.625,
	BaseWatts:      47.5,
}

// NodeSpec describes one server class.
type NodeSpec struct {
	// Name labels the class in reports.
	Name string
	// Sockets is the CPU socket count.
	Sockets int
	// MemoryGB is the DRAM size.
	MemoryGB float64
	// HourlyCost is the cloud rental price in $/hr.
	HourlyCost float64
}

// Validate checks the spec.
func (n NodeSpec) Validate() error {
	if n.Sockets < 1 || n.MemoryGB <= 0 || n.HourlyCost < 0 {
		return fmt.Errorf("%w: node %+v", ErrBadConfig, n)
	}
	return nil
}

// The paper's two node classes (Section II-B).
var (
	// AppNode is the web/application-tier node: 2 sockets, 12 GB,
	// compute-optimized EC2 large at $0.10/hr.
	AppNode = NodeSpec{Name: "app", Sockets: 2, MemoryGB: 12, HourlyCost: 0.100}
	// MemcachedNode is the cache node: 1 Xeon socket, 72 GB,
	// memory-optimized EC2 large at $0.166/hr.
	MemcachedNode = NodeSpec{Name: "memcached", Sockets: 1, MemoryGB: 72, HourlyCost: 0.166}
)

// PeakPower returns the modeled peak power draw of a node in watts.
func (m PowerModel) PeakPower(n NodeSpec) float64 {
	return float64(n.Sockets)*m.WattsPerSocket + n.MemoryGB*m.WattsPerGB + m.BaseWatts
}

// PowerOverheadPercent returns how much more power b draws than a, in
// percent.
func (m PowerModel) PowerOverheadPercent(a, b NodeSpec) float64 {
	pa := m.PeakPower(a)
	if pa <= 0 {
		return 0
	}
	return (m.PeakPower(b)/pa - 1) * 100
}

// CostOverheadPercent returns how much more b rents for than a, in percent.
func CostOverheadPercent(a, b NodeSpec) float64 {
	if a.HourlyCost <= 0 {
		return 0
	}
	return (b.HourlyCost/a.HourlyCost - 1) * 100
}

// TierCost describes the savings from elastically right-sizing a tier.
type TierCost struct {
	// StaticNodes is the peak-provisioned size; MeanNodes the average
	// elastic size over the trace.
	StaticNodes float64
	MeanNodes   float64
	// HourlySavings is (static − elastic) node-hours × node price, per hour.
	HourlySavings float64
	// PowerSavingsWatts is the average power saved.
	PowerSavingsWatts float64
	// SavingsPercent is the relative reduction in node-hours.
	SavingsPercent float64
}

// ElasticSavings evaluates the Section II-C estimate: given the per-epoch
// node counts a perfectly elastic tier would use, versus static peak
// provisioning, how much cost and power elasticity recovers.
func ElasticSavings(nodeCounts []int, spec NodeSpec, power PowerModel) (TierCost, error) {
	if err := spec.Validate(); err != nil {
		return TierCost{}, err
	}
	if len(nodeCounts) == 0 {
		return TierCost{}, fmt.Errorf("%w: empty node-count series", ErrBadConfig)
	}
	peak, sum := 0, 0
	for _, n := range nodeCounts {
		if n < 0 {
			return TierCost{}, fmt.Errorf("%w: negative node count %d", ErrBadConfig, n)
		}
		if n > peak {
			peak = n
		}
		sum += n
	}
	mean := float64(sum) / float64(len(nodeCounts))
	out := TierCost{
		StaticNodes: float64(peak),
		MeanNodes:   mean,
	}
	if peak > 0 {
		out.SavingsPercent = (1 - mean/float64(peak)) * 100
	}
	out.HourlySavings = (float64(peak) - mean) * spec.HourlyCost
	out.PowerSavingsWatts = (float64(peak) - mean) * power.PeakPower(spec)
	return out, nil
}
