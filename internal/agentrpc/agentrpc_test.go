package agentrpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hashring"
)

type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1_700_000_000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Microsecond)
	return c.t
}

// rpcNode is one TCP-served agent for tests.
type rpcNode struct {
	agent  *agent.Agent
	server *Server
}

// startNode spins up an agent whose peer transport is the shared book,
// served over TCP, and registers it in the book.
func startNode(t *testing.T, book *AddressBook, name string, pages int, clk *testClock) *rpcNode {
	t.Helper()
	c, err := cache.New(int64(pages)*cache.PageSize, cache.WithClock(clk.Now))
	if err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(name, c, book)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Serve("127.0.0.1:0", a, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	book.Register(name, s.Addr())
	return &rpcNode{agent: a, server: s}
}

func populate(t *testing.T, a *agent.Agent, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := a.Cache().Set(fmt.Sprintf("%s-key-%05d", a.Node(), i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil, nil); err == nil {
		t.Fatal("want error for nil agent")
	}
}

func TestScoreOverTCP(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	n := startNode(t, book, "n1", 2, clk)
	populate(t, n.agent, 25)

	cl, err := book.Agent("n1")
	if err != nil {
		t.Fatal(err)
	}
	rep := cl.Score(context.Background())
	if rep.Node != "n1" || rep.Items != 25 {
		t.Fatalf("score = %+v", rep)
	}
	if len(rep.Medians) != 1 {
		t.Fatalf("medians = %v", rep.Medians)
	}
}

func TestThreePhaseMigrationOverTCP(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	retiring := startNode(t, book, "retiring", 2, clk)
	r1 := startNode(t, book, "r1", 2, clk)
	r2 := startNode(t, book, "r2", 2, clk)
	populate(t, retiring.agent, 400)
	retained := []string{"r1", "r2"}

	retClient, err := book.Agent("retiring")
	if err != nil {
		t.Fatal(err)
	}
	if err := retClient.SendMetadata(context.Background(), retained); err != nil {
		t.Fatal(err)
	}

	total := 0
	for _, name := range retained {
		cl, err := book.Agent(name)
		if err != nil {
			t.Fatal(err)
		}
		takes, err := cl.ComputeTakes(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sent, err := retClient.SendData(context.Background(), name, takes["retiring"], retained)
		if err != nil {
			t.Fatal(err)
		}
		total += sent.Pairs
	}
	if total != 400 {
		t.Fatalf("migrated %d items over TCP, want 400", total)
	}

	ring, err := hashring.New(retained)
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]*rpcNode{"r1": r1, "r2": r2}
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("retiring-key-%05d", i)
		owner, err := ring.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !nodes[owner].agent.Cache().Contains(key) {
			t.Fatalf("key %s missing on %s after TCP migration", key, owner)
		}
	}
}

func TestComputeTakesNoMetadataSentinelOverTCP(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	startNode(t, book, "n1", 1, clk)
	cl, err := book.Agent("n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ComputeTakes(context.Background()); !errors.Is(err, agent.ErrNoMetadata) {
		t.Fatalf("err = %v, want agent.ErrNoMetadata across the wire", err)
	}
}

func TestHashSplitOverTCP(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	e1 := startNode(t, book, "e1", 2, clk)
	n1 := startNode(t, book, "new1", 2, clk)
	populate(t, e1.agent, 300)

	cl, err := book.Agent("e1")
	if err != nil {
		t.Fatal(err)
	}
	moved, err := cl.HashSplit(context.Background(), []string{"new1"}, []string{"e1", "new1"})
	if err != nil {
		t.Fatal(err)
	}
	if moved.Pairs == 0 {
		t.Fatal("nothing moved")
	}
	if n1.agent.Cache().Len() != moved.Pairs {
		t.Fatalf("new node holds %d, want %d", n1.agent.Cache().Len(), moved.Pairs)
	}
}

func TestMasterOverTCP(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	names := []string{"n0", "n1", "n2"}
	nodes := make(map[string]*rpcNode, len(names))
	for _, name := range names {
		nodes[name] = startNode(t, book, name, 2, clk)
	}
	ring, err := hashring.New(names)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		key := fmt.Sprintf("key-%05d", i)
		owner, err := ring.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if err := nodes[owner].agent.Cache().Set(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	m, err := core.NewMaster(Directory{Book: book}, names, core.WithClock(clk.Now))
	if err != nil {
		t.Fatal(err)
	}
	report, err := m.ScaleIn(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.ItemsMigrated == 0 {
		t.Fatal("no items migrated through the TCP master path")
	}
	retained := m.Members()
	ring2, err := hashring.New(retained)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		key := fmt.Sprintf("key-%05d", i)
		owner, err := ring2.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !nodes[owner].agent.Cache().Contains(key) {
			t.Fatalf("key %s missing after TCP scale-in", key)
		}
	}
}

func TestUnknownPeer(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	if _, err := book.Peer("ghost"); !errors.Is(err, agent.ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestDeregisterClosesClient(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	startNode(t, book, "n1", 1, clk)
	if _, err := book.Agent("n1"); err != nil {
		t.Fatal(err)
	}
	book.Deregister("n1")
	if _, err := book.Agent("n1"); !errors.Is(err, agent.ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer after deregister", err)
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	n := startNode(t, book, "n1", 1, clk)
	populate(t, n.agent, 5)
	cl, err := book.Agent("n1")
	if err != nil {
		t.Fatal(err)
	}
	if rep := cl.Score(context.Background()); rep.Items != 5 {
		t.Fatalf("pre-restart score = %+v", rep)
	}
	// Restart the server on a new port and re-register.
	if err := n.server.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Serve("127.0.0.1:0", n.agent, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close() })
	book.Register("n1", s2.Addr())
	cl2, err := book.Agent("n1")
	if err != nil {
		t.Fatal(err)
	}
	if rep := cl2.Score(context.Background()); rep.Items != 5 {
		t.Fatalf("post-restart score = %+v", rep)
	}
}

func TestRemoteErrorWrapped(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	startNode(t, book, "n1", 1, clk)
	cl, err := book.Agent("n1")
	if err != nil {
		t.Fatal(err)
	}
	// SendMetadata with an empty retained set errors remotely.
	if err := cl.SendMetadata(context.Background(), nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

func TestConcurrentRPCs(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	n := startNode(t, book, "n1", 2, clk)
	populate(t, n.agent, 100)
	cl, err := book.Agent("n1")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if rep := cl.Score(context.Background()); rep.Items != 100 {
					t.Errorf("score = %+v", rep)
					return
				}
			}
		}()
	}
	wg.Wait()
}
