package agentrpc

// BenchmarkMigrateDataPlane is the acceptance benchmark for the streaming
// data plane: one full SendData push of the sender's hot set, measured as
// migrated pairs per second, across
//
//	{json-stopwait, binary-pipelined} × {rtt=0, rtt=5ms}
//
// json-stopwait is the legacy path (Client.ForceJSON pins the line
// protocol; every ImportData batch is one blocking round trip).
// binary-pipelined is the framed stream with the default in-flight window.
// The RTT is injected by a userspace proxy that delays each direction by
// rtt/2, modeling propagation (not bandwidth): pipelined batches overlap
// the latency, stop-and-wait pays it per batch.
//
// Run via `make bench-migrate`. The issue's bar is ≥3× pairs/s for the
// binary plane at rtt=5ms.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/cache"
)

// delayProxy relays TCP to target, delaying every chunk in both
// directions by delay (one-way propagation; RTT = 2×delay). Bandwidth is
// effectively unconstrained: a reader goroutine timestamps chunks into a
// deep queue and a writer goroutine releases them when due, so many
// chunks can be "on the wire" at once.
func delayProxy(tb testing.TB, target string, delay time.Duration) string {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = ln.Close() })
	type chunk struct {
		data []byte
		due  time.Time
	}
	pipe := func(dst, src net.Conn) {
		defer dst.Close()
		defer src.Close()
		ch := make(chan chunk, 4096)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range ch {
				if d := time.Until(c.due); d > 0 {
					time.Sleep(d)
				}
				if _, err := dst.Write(c.data); err != nil {
					return
				}
			}
		}()
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				data := make([]byte, n)
				copy(data, buf[:n])
				ch <- chunk{data: data, due: time.Now().Add(delay)}
			}
			if err != nil {
				break
			}
		}
		close(ch)
		wg.Wait()
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				conn.Close()
				continue
			}
			go pipe(up, conn)
			go pipe(conn, up)
		}
	}()
	return ln.Addr().String()
}

func BenchmarkMigrateDataPlane(b *testing.B) {
	const (
		pairs     = 2048
		valLen    = 256
		batchSize = 64 // 32 batches per push
	)
	for _, mode := range []string{"json-stopwait", "binary-pipelined"} {
		for _, rtt := range []time.Duration{0, 5 * time.Millisecond} {
			b.Run(fmt.Sprintf("%s/rtt=%s", mode, rtt), func(b *testing.B) {
				clk := newTestClock()
				recvCache, err := cache.New(8*cache.PageSize, cache.WithClock(clk.Now))
				if err != nil {
					b.Fatal(err)
				}
				recv, err := agent.New("recv", recvCache, NewAddressBook())
				if err != nil {
					b.Fatal(err)
				}
				srv, err := Serve("127.0.0.1:0", recv, nil)
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()

				cl := NewClient("recv", delayProxy(b, srv.Addr(), rtt/2))
				defer cl.Close()
				if mode == "json-stopwait" {
					cl.ForceJSON()
				}
				sendCache, err := cache.New(8*cache.PageSize, cache.WithClock(clk.Now))
				if err != nil {
					b.Fatal(err)
				}
				sender, err := agent.New("sender", sendCache, clientTransport{cl},
					agent.WithTransferBatchSize(batchSize))
				if err != nil {
					b.Fatal(err)
				}
				populateSized(b, sender, pairs, valLen)

				ctx := context.Background()
				total := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Touch one fresh key so the plan fingerprint changes:
					// each iteration is a new epoch, never an ack-resume of
					// the previous push.
					b.StopTimer()
					if err := sender.Cache().Set(fmt.Sprintf("bust-%09d", i), []byte("x")); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					stats, err := sender.SendData(ctx, "recv", takesFor(sender), []string{"recv"})
					if err != nil {
						b.Fatal(err)
					}
					if stats.Pairs < pairs {
						b.Fatalf("push covered %d pairs, want ≥ %d", stats.Pairs, pairs)
					}
					if stats.Resumed != 0 {
						b.Fatalf("push resumed %d pairs; the fingerprint bust failed", stats.Resumed)
					}
					total += stats.Pairs
				}
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "pairs/s")
			})
		}
	}
}
