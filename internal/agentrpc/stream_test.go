package agentrpc

// Integration tests for the binary streaming data plane over real TCP:
// windowed pipelined import end-to-end, negotiation fallback against a
// JSON-only server, ack-based resume across a severed connection, and
// concurrent streams from several senders (the -race target for this
// package).

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/agent"
	"repro/internal/cache"
)

// clientTransport resolves every peer name to one fixed client.
type clientTransport struct{ cl *Client }

func (t clientTransport) Peer(string) (agent.Peer, error) { return t.cl, nil }

// newStreamSender builds a sender agent whose pushes go through cl.
func newStreamSender(t *testing.T, name string, cl *Client, clk *testClock, opts ...agent.Option) *agent.Agent {
	t.Helper()
	c, err := cache.New(4*cache.PageSize, cache.WithClock(clk.Now))
	if err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(name, c, clientTransport{cl}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func takesFor(a *agent.Agent) map[int]int {
	takes := make(map[int]int)
	for _, classID := range a.Cache().PopulatedClasses() {
		takes[classID] = a.Cache().ClassLen(classID)
	}
	return takes
}

func TestStreamImportOverTCP(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	recv := startNode(t, book, "recv", 4, clk)

	cl := NewClient("recv", recv.server.Addr())
	defer cl.Close()
	sender := newStreamSender(t, "sender", cl, clk,
		agent.WithTransferBatchSize(32), agent.WithMaxInflight(4))
	populateSized(t, sender, 500, 256)

	stats, err := sender.SendData(context.Background(), "recv", takesFor(sender), []string{"recv"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs != 500 || stats.Resumed != 0 {
		t.Fatalf("stats = %+v, want 500 fresh pairs", stats)
	}
	if stats.Batches < 500/32 {
		t.Fatalf("only %d batches for 500 pairs at batch size 32", stats.Batches)
	}
	if stats.WireBytes <= stats.BytesMoved {
		t.Fatalf("wire bytes %d should exceed payload bytes %d (framing overhead)", stats.WireBytes, stats.BytesMoved)
	}
	// Binary framing beats the JSON line protocol's ~33% base64 inflation:
	// with 256-byte values the overhead over raw key+value stays under 20%.
	if float64(stats.WireBytes) > 1.2*float64(stats.BytesMoved) {
		t.Fatalf("wire overhead %.1f%%, want < 20%%",
			100*float64(stats.WireBytes-stats.BytesMoved)/float64(stats.BytesMoved))
	}
	if got := recv.agent.Cache().Len(); got != 500 {
		t.Fatalf("receiver holds %d, want 500", got)
	}
	// MRU order must survive the windowed stream (invariant I2 end to end).
	for _, classID := range recv.agent.Cache().PopulatedClasses() {
		metas, err := recv.agent.Cache().DumpClass(classID, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(metas); i++ {
			if metas[i].LastAccess.After(metas[i-1].LastAccess) {
				t.Fatalf("class %d out of MRU order at %d after streamed import", classID, i)
			}
		}
	}
	// Control ops still work on the same negotiated connection.
	if rep := cl.Score(context.Background()); rep.Items != 500 {
		t.Fatalf("post-stream score = %+v", rep)
	}
}

// jsonOnlyServer mimics an old build: newline-delimited JSON only. Any
// line that fails to parse (the client's binary hello) kills that
// connection, like the real server's json.Unmarshal failure path did.
func jsonOnlyServer(t *testing.T, a *agent.Agent) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					line, err := br.ReadBytes('\n')
					if err != nil {
						return
					}
					var req request
					if err := json.Unmarshal(line, &req); err != nil {
						return // old servers drop the connection on garbage
					}
					var resp response
					switch req.Op {
					case OpImportData:
						if err := a.ImportData(context.Background(), req.From, req.Pairs); err != nil {
							resp.Error = err.Error()
						} else {
							resp.OK = true
						}
					default:
						resp.Error = fmt.Sprintf("unsupported op %q", req.Op)
					}
					data, err := json.Marshal(&resp)
					if err != nil {
						return
					}
					if _, err := conn.Write(append(data, '\n')); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestStreamFallsBackToJSONOnlyServer: against an old server the hello
// frame dies, the client pins itself to JSON, and the push completes over
// the legacy per-batch path — mixed-version clusters keep migrating.
func TestStreamFallsBackToJSONOnlyServer(t *testing.T) {
	clk := newTestClock()
	recvCache, err := cache.New(4*cache.PageSize, cache.WithClock(clk.Now))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := agent.New("recv", recvCache, NewAddressBook())
	if err != nil {
		t.Fatal(err)
	}
	addr := jsonOnlyServer(t, recv)

	cl := NewClient("recv", addr)
	defer cl.Close()
	sender := newStreamSender(t, "sender", cl, clk, agent.WithTransferBatchSize(32))
	populate(t, sender, 200)

	stats, err := sender.SendData(context.Background(), "recv", takesFor(sender), []string{"recv"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs != 200 {
		t.Fatalf("fallback moved %d pairs, want 200", stats.Pairs)
	}
	if stats.WireBytes != 0 {
		t.Fatalf("fallback path reported wire bytes %d; only the binary plane measures them", stats.WireBytes)
	}
	if got := recv.Cache().Len(); got != 200 {
		t.Fatalf("receiver holds %d, want 200", got)
	}
	// The failed negotiation must be sticky: a streaming open now reports
	// unsupported immediately instead of re-probing.
	if _, err := cl.OpenImport(context.Background(), "sender", 1, 1, 4); !errors.Is(err, agent.ErrStreamUnsupported) {
		t.Fatalf("OpenImport after JSON pinning = %v, want ErrStreamUnsupported", err)
	}
}

// cutProxy relays TCP to target but severs the first connection after
// limit client→server bytes; later connections pass through untouched.
func cutProxy(t *testing.T, target string, limit int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	first := true
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			cut := 0
			if first {
				first, cut = false, limit
			}
			go func(conn net.Conn, cut int) {
				up, err := net.Dial("tcp", target)
				if err != nil {
					conn.Close()
					return
				}
				var wg sync.WaitGroup
				wg.Add(2)
				go func() { // client → server, optionally cut
					defer wg.Done()
					buf := make([]byte, 4096)
					relayed := 0
					for {
						n, err := conn.Read(buf)
						if n > 0 {
							if _, werr := up.Write(buf[:n]); werr != nil {
								break
							}
							relayed += n
							if cut > 0 && relayed >= cut {
								break // sever mid-stream
							}
						}
						if err != nil {
							break
						}
					}
					conn.Close()
					up.Close()
				}()
				go func() { // server → client
					defer wg.Done()
					buf := make([]byte, 4096)
					for {
						n, err := up.Read(buf)
						if n > 0 {
							if _, werr := conn.Write(buf[:n]); werr != nil {
								break
							}
						}
						if err != nil {
							break
						}
					}
				}()
				wg.Wait()
			}(conn, cut)
		}
	}()
	return ln.Addr().String()
}

// TestStreamResumeOverTCP is the kill-and-retry path end to end: the
// connection dies mid-stream, the retried push reopens the same stream
// identity over a fresh connection, and the receiver's acked high-water
// mark spares every batch that already landed.
func TestStreamResumeOverTCP(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	recv := startNode(t, book, "recv", 4, clk)

	// Cut the first connection ~20 KiB in: negotiation and a few batches
	// land, then the stream dies.
	cl := NewClient("recv", cutProxy(t, recv.server.Addr(), 20<<10))
	defer cl.Close()
	sender := newStreamSender(t, "sender", cl, clk,
		agent.WithTransferBatchSize(16), agent.WithMaxInflight(4))
	populateSized(t, sender, 400, 64)
	takes := takesFor(sender)

	if _, err := sender.SendData(context.Background(), "recv", takes, []string{"recv"}); err == nil {
		t.Fatal("want the severed connection to fail the push")
	}
	applied := recv.agent.Cache().Len()
	if applied == 0 || applied >= 400 {
		t.Fatalf("receiver holds %d after the cut, want a strict partial", applied)
	}

	stats, err := sender.SendData(context.Background(), "recv", takes, []string{"recv"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs != 400 {
		t.Fatalf("retry covered %d pairs, want 400", stats.Pairs)
	}
	if stats.Resumed == 0 {
		t.Fatal("retry re-shipped everything: the ack high-water mark was ignored")
	}
	// The receiver's applier may still be draining buffered frames when the
	// client observes the cut, so the snapshot is only a lower bound.
	if stats.Resumed < applied {
		t.Fatalf("retry skipped only %d pairs, receiver already had %d applied", stats.Resumed, applied)
	}
	if got := recv.agent.Cache().Len(); got != 400 {
		t.Fatalf("receiver holds %d after resume, want 400", got)
	}
}

func populateSized(t testing.TB, a *agent.Agent, n, valLen int) {
	t.Helper()
	val := make([]byte, valLen)
	for i := 0; i < n; i++ {
		if err := a.Cache().Set(fmt.Sprintf("%s-key-%05d", a.Node(), i), val); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentStreamsOverTCP hammers one receiver with four streaming
// senders plus a stream-concurrent control-op client — the -race workout
// for the server's applier/writer split.
func TestConcurrentStreamsOverTCP(t *testing.T) {
	book := NewAddressBook()
	defer book.Close()
	clk := newTestClock()
	recv := startNode(t, book, "recv", 8, clk)

	const senders, perSender = 4, 200
	var wg sync.WaitGroup
	errs := make(chan error, senders+1)
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cl := NewClient("recv", recv.server.Addr())
			defer cl.Close()
			sender := newStreamSender(t, fmt.Sprintf("sender-%d", s), cl, clk,
				agent.WithTransferBatchSize(16), agent.WithMaxInflight(4))
			populate(t, sender, perSender)
			stats, err := sender.SendData(context.Background(), "recv", takesFor(sender), []string{"recv"})
			if err != nil {
				errs <- err
				return
			}
			if stats.Pairs != perSender {
				errs <- fmt.Errorf("sender %d moved %d pairs, want %d", s, stats.Pairs, perSender)
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := NewClient("recv", recv.server.Addr())
		defer cl.Close()
		for i := 0; i < 50; i++ {
			if rep := cl.Score(context.Background()); rep.Node != "recv" {
				errs <- fmt.Errorf("score = %+v", rep)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := recv.agent.Cache().Len(); got != senders*perSender {
		t.Fatalf("receiver holds %d, want %d", got, senders*perSender)
	}
}
