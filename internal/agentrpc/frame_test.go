package agentrpc

// Unit tests for the binary frame codec: header round trips, payload
// encodings, the zero-timestamp sentinel, and rejection of truncated or
// corrupt input at every decode boundary.

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
)

func TestFrameRoundTrip(t *testing.T) {
	var netBuf bytes.Buffer
	bw := bufio.NewWriter(&netBuf)
	payloads := [][]byte{nil, []byte("x"), bytes.Repeat([]byte{0xEB}, 4096)}
	for i, p := range payloads {
		if err := writeFrame(bw, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		typ, got, err := readFrame(&netBuf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d type = %d", i, typ)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d payload mismatch: %d bytes vs %d", i, len(got), len(want))
		}
		putBuf(got)
	}
}

func TestReadFrameRejectsCorruptHeaders(t *testing.T) {
	cases := map[string][]byte{
		"bad magic":    {0x7B, frameVersion, ftHello, 0, 0, 0, 0},
		"bad version":  {frameMagic, 99, ftHello, 0, 0, 0, 0},
		"huge payload": {frameMagic, frameVersion, ftHello, 0xFF, 0xFF, 0xFF, 0xFF},
		"truncated":    {frameMagic, frameVersion, ftHello, 0, 0, 0, 5, 'a', 'b'},
	}
	for name, raw := range cases {
		if _, _, err := readFrame(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestImportOpenRoundTrip(t *testing.T) {
	b := appendImportOpen(getBuf(), "node-a", 7, 0xDEADBEEF, 16)
	from, epoch, fp, window, err := decodeImportOpen(b)
	if err != nil {
		t.Fatal(err)
	}
	if from != "node-a" || epoch != 7 || fp != 0xDEADBEEF || window != 16 {
		t.Fatalf("decoded (%q, %d, %#x, %d)", from, epoch, fp, window)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, _, _, _, err := decodeImportOpen(b[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(b))
		}
	}
	putBuf(b)
}

func TestAckRoundTrips(t *testing.T) {
	b := appendOpenAck(getBuf(), 42, "")
	hw, remoteErr, err := decodeOpenAck(b)
	if err != nil || remoteErr != "" || hw != 42 {
		t.Fatalf("open ack = (%d, %q, %v)", hw, remoteErr, err)
	}
	putBuf(b)

	b = appendOpenAck(getBuf(), 0, "kaboom")
	if _, remoteErr, err := decodeOpenAck(b); err != nil || remoteErr != "kaboom" {
		t.Fatalf("open error ack = (%q, %v)", remoteErr, err)
	}
	putBuf(b)

	b = appendBatchAck(getBuf(), 9, 9, 128, "")
	seq, hw, imported, remoteErr, err := decodeBatchAck(b)
	if err != nil || remoteErr != "" || seq != 9 || hw != 9 || imported != 128 {
		t.Fatalf("batch ack = (%d, %d, %d, %q, %v)", seq, hw, imported, remoteErr, err)
	}
	putBuf(b)

	b = appendBatchAck(getBuf(), 3, 0, 0, "gap")
	seq, _, _, remoteErr, err = decodeBatchAck(b)
	if err != nil || seq != 3 || remoteErr != "gap" {
		t.Fatalf("batch error ack = (%d, %q, %v)", seq, remoteErr, err)
	}
	putBuf(b)

	if _, _, err := decodeOpenAck(nil); err == nil {
		t.Fatal("empty open ack decoded")
	}
	if _, _, _, _, err := decodeBatchAck([]byte{1}); err == nil {
		t.Fatal("truncated batch ack decoded")
	}
}

func TestImportBatchRoundTrip(t *testing.T) {
	ts := time.Unix(1_700_000_123, 456)
	pairs := []cache.KV{
		{Key: "alpha", Value: []byte("value-1"), Flags: 7, LastAccess: ts},
		{Key: "beta", Value: nil, Flags: 0},                     // zero time → sentinel
		{Key: strings.Repeat("k", 300), Value: make([]byte, 5)}, // multi-byte varint key length
	}
	b := appendImportBatch(getBuf(), "sender", 3, 11, pairs)
	from, epoch, seq, got, err := decodeImportBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if from != "sender" || epoch != 3 || seq != 11 {
		t.Fatalf("header = (%q, %d, %d)", from, epoch, seq)
	}
	if len(got) != len(pairs) {
		t.Fatalf("decoded %d pairs, want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if got[i].Key != pairs[i].Key || !bytes.Equal(got[i].Value, pairs[i].Value) || got[i].Flags != pairs[i].Flags {
			t.Fatalf("pair %d mismatch: %+v", i, got[i])
		}
		if !got[i].LastAccess.Equal(pairs[i].LastAccess) {
			t.Fatalf("pair %d timestamp %v, want %v", i, got[i].LastAccess, pairs[i].LastAccess)
		}
	}
	// Every truncation point must fail loudly, never mis-decode.
	for cut := 0; cut < len(b); cut++ {
		if _, _, _, _, err := decodeImportBatch(b[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(b))
		}
	}
	putBuf(b)
}

// TestImportBatchValueAliasing documents the zero-copy contract: decoded
// values alias the frame payload, so the payload must outlive the pairs.
func TestImportBatchValueAliasing(t *testing.T) {
	pairs := []cache.KV{{Key: "k", Value: []byte("immutable")}}
	b := appendImportBatch(getBuf(), "s", 1, 1, pairs)
	_, _, _, got, err := decodeImportBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-13] ^= 0xFF // flip a byte inside the encoded value region
	if bytes.Equal(got[0].Value, []byte("immutable")) {
		t.Fatal("decoded value did not alias the payload — the zero-copy path regressed")
	}
}
