// Package agentrpc carries ElMem's control-plane traffic over TCP:
// Master → Agent commands (scoring, migration phases, hash split) and
// Agent → Agent pushes (metadata offers, data imports). The paper pipes
// metadata and data between nodes over ssh (Section III-D1); we use
// persistent TCP connections with newline-delimited JSON frames, which
// preserves the phase structure while staying dependency-free.
//
// The same wire protocol serves both directions: the Server exposes a
// node's *agent.Agent, the Client implements core.MasterAgent and
// agent.Peer, and the AddressBook maps node names to agent addresses,
// acting as the agent.Transport and core.Directory for TCP deployments.
package agentrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/taskgroup"
)

// Op names one RPC operation.
type Op string

// The control-plane operations.
const (
	OpScore         Op = "score"
	OpSendMetadata  Op = "send_metadata"
	OpComputeTakes  Op = "compute_takes"
	OpSendData      Op = "send_data"
	OpHashSplit     Op = "hash_split"
	OpOfferMetadata Op = "offer_metadata"
	OpImportData    Op = "import_data"
)

// OpImportOpen names the binary stream-open exchange; it never appears in
// a JSON frame but gives the fault-injection layer a handle on it.
const OpImportOpen Op = "import_open"

// ErrRemote wraps an error string returned by the remote agent.
var ErrRemote = errors.New("agentrpc: remote error")

// request is one wire frame from caller to agent.
type request struct {
	Op Op `json:"op"`

	// TimeoutMS carries the caller's remaining context deadline so the
	// remote agent bounds its own work; 0 means no deadline.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`

	// SendMetadata / SendData share Retained.
	Retained []string `json:"retained,omitempty"`
	// SendData.
	Target string      `json:"target,omitempty"`
	Takes  map[int]int `json:"takes,omitempty"`
	// HashSplit.
	NewMembers []string `json:"newMembers,omitempty"`
	Full       []string `json:"full,omitempty"`
	// OfferMetadata / ImportData.
	From  string                   `json:"from,omitempty"`
	Metas map[int][]cache.ItemMeta `json:"metas,omitempty"`
	Pairs []cache.KV               `json:"pairs,omitempty"`
}

// response is one wire frame back.
type response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	Score *agent.ScoreReport `json:"score,omitempty"`
	Takes agent.Takes        `json:"takes,omitempty"`
	Stats *agent.SendStats   `json:"stats,omitempty"`
}

// Server exposes one node's Agent over TCP.
type Server struct {
	agent *agent.Agent
	ln    net.Listener
	log   *log.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts the RPC server on addr ("127.0.0.1:0" picks a port).
func Serve(addr string, a *agent.Agent, logger *log.Logger) (*Server, error) {
	if a == nil {
		return nil, errors.New("agentrpc: nil agent")
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agentrpc: listen %s: %w", addr, err)
	}
	s := &Server{agent: a, ln: ln, log: logger, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and joins its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn multiplexes both wire protocols on one connection: binary
// frames start with the magic byte 0xEB (which can never begin a JSON
// value), everything else is a newline-delimited JSON request. Import
// batches are handed to a per-connection applier goroutine so
// BatchImport overlaps the network read of the next frame; any non-batch
// traffic first drains the applier (barrier) to keep request/response
// ordering intact.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	br := bufio.NewReaderSize(conn, 1<<20)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var wmu sync.Mutex
	imp := importApplier{agent: s.agent, bw: bw, wmu: &wmu}
	defer imp.stopApplier()
	for {
		first, err := br.Peek(1)
		if err != nil {
			return
		}
		if first[0] == frameMagic {
			typ, payload, err := readFrame(br)
			if err != nil {
				s.log.Printf("agentrpc: bad frame: %v", err)
				return
			}
			if !s.serveFrame(&imp, bw, &wmu, typ, payload) {
				return
			}
			continue
		}
		imp.barrier()
		line, err := br.ReadBytes('\n')
		if err != nil {
			return
		}
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			s.log.Printf("agentrpc: bad request: %v", err)
			return
		}
		resp := s.dispatch(&req)
		data, err := json.Marshal(resp)
		if err != nil {
			return
		}
		wmu.Lock()
		_, werr := bw.Write(data)
		if werr == nil {
			werr = bw.WriteByte('\n')
		}
		if werr == nil {
			werr = bw.Flush()
		}
		wmu.Unlock()
		if werr != nil {
			return
		}
	}
}

// serveFrame handles one binary frame; false tears the connection down.
func (s *Server) serveFrame(imp *importApplier, bw *bufio.Writer, wmu *sync.Mutex, typ byte, payload []byte) bool {
	switch typ {
	case ftHello:
		putBuf(payload)
		imp.barrier()
		return writeFrameLocked(wmu, bw, ftHelloAck, nil) == nil
	case ftImportOpen:
		imp.barrier()
		from, epoch, fp, _, derr := decodeImportOpen(payload)
		putBuf(payload)
		ack := getBuf()
		if derr != nil {
			ack = appendOpenAck(ack, 0, derr.Error())
		} else {
			ack = appendOpenAck(ack, s.agent.ImportOpen(from, epoch, fp), "")
		}
		err := writeFrameLocked(wmu, bw, ftOpenAck, ack)
		putBuf(ack)
		return err == nil && derr == nil
	case ftImportBatch:
		from, epoch, seq, pairs, derr := decodeImportBatch(payload)
		if derr != nil {
			putBuf(payload)
			s.log.Printf("agentrpc: bad import batch: %v", derr)
			return false
		}
		imp.enqueue(importJob{payload: payload, from: from, epoch: epoch, seq: seq, pairs: pairs})
		return true
	default:
		putBuf(payload)
		s.log.Printf("agentrpc: unknown frame type %d", typ)
		return false
	}
}

func writeFrameLocked(wmu *sync.Mutex, bw *bufio.Writer, typ byte, payload []byte) error {
	wmu.Lock()
	defer wmu.Unlock()
	return writeFrame(bw, typ, payload)
}

// importJob is one decoded batch frame awaiting application; payload is
// the pooled frame buffer the pairs' values alias.
type importJob struct {
	payload []byte
	from    string
	epoch   uint64
	seq     uint64
	pairs   []cache.KV
	barrier chan struct{} // when non-nil: a sync point, no batch
}

// importApplier applies batch frames and writes their acks on a
// per-connection goroutine, started lazily on the first batch, so the
// reader can pull the next frame off the wire while BatchImport runs. The
// small queue keeps at most a couple of decoded frames alive — the
// receiver-side analogue of the sender's bounded window.
type importApplier struct {
	agent *agent.Agent
	bw    *bufio.Writer
	wmu   *sync.Mutex
	jobs  chan importJob
	wg    sync.WaitGroup
}

func (ia *importApplier) enqueue(j importJob) {
	if ia.jobs == nil {
		ia.jobs = make(chan importJob, 2)
		ia.wg.Add(1)
		go ia.run()
	}
	ia.jobs <- j
}

// barrier waits until every queued batch has been applied and acked, so
// a following response cannot overtake an ack or race the writer.
func (ia *importApplier) barrier() {
	if ia.jobs == nil {
		return
	}
	ch := make(chan struct{})
	ia.jobs <- importJob{barrier: ch}
	<-ch
}

func (ia *importApplier) stopApplier() {
	if ia.jobs != nil {
		close(ia.jobs)
		ia.wg.Wait()
	}
}

func (ia *importApplier) run() {
	defer ia.wg.Done()
	for j := range ia.jobs {
		if j.barrier != nil {
			close(j.barrier)
			continue
		}
		hw, n, err := ia.agent.ImportFrame(j.from, j.epoch, j.seq, j.pairs)
		ack := getBuf()
		if err != nil {
			ack = appendBatchAck(ack, j.seq, hw, n, err.Error())
		} else {
			ack = appendBatchAck(ack, j.seq, hw, n, "")
		}
		// A failed ack write means the connection is dying; the reader
		// will notice on its next read, so just keep draining.
		_ = writeFrameLocked(ia.wmu, ia.bw, ftBatchAck, ack)
		putBuf(ack)
		putBuf(j.payload)
	}
}

func (s *Server) dispatch(req *request) *response {
	// Rebuild the caller's deadline from the wire so the agent's own loops
	// (per-target pushes, per-batch transfers) stop when the Master's phase
	// budget is spent, even though TCP cannot carry a live cancel signal.
	ctx := context.Background()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	switch req.Op {
	case OpScore:
		rep := s.agent.Score(ctx)
		return &response{OK: true, Score: &rep}
	case OpSendMetadata:
		if err := s.agent.SendMetadata(ctx, req.Retained); err != nil {
			return errResponse(err)
		}
		return &response{OK: true}
	case OpComputeTakes:
		takes, err := s.agent.ComputeTakes(ctx)
		if err != nil {
			return errResponse(err)
		}
		return &response{OK: true, Takes: takes}
	case OpSendData:
		stats, err := s.agent.SendData(ctx, req.Target, req.Takes, req.Retained)
		if err != nil {
			return errResponse(err)
		}
		return &response{OK: true, Stats: &stats}
	case OpHashSplit:
		stats, err := s.agent.HashSplit(ctx, req.NewMembers, req.Full)
		if err != nil {
			return errResponse(err)
		}
		return &response{OK: true, Stats: &stats}
	case OpOfferMetadata:
		if err := s.agent.OfferMetadata(ctx, req.From, req.Metas); err != nil {
			return errResponse(err)
		}
		return &response{OK: true}
	case OpImportData:
		if err := s.agent.ImportData(ctx, req.From, req.Pairs); err != nil {
			return errResponse(err)
		}
		return &response{OK: true}
	default:
		return &response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func errResponse(err error) *response {
	return &response{Error: err.Error()}
}

// Client talks to one remote Agent. It implements core.MasterAgent,
// agent.Peer and agent.StreamPeer over a single persistent connection
// with serialized calls, redialling transparently after failures. On the
// first dial it negotiates the binary stream protocol with a hello
// frame; a server that rejects it (an old JSON-only build drops the
// connection) pins the client to JSON, and streaming opens report
// agent.ErrStreamUnsupported so senders fall back to per-batch
// ImportData.
type Client struct {
	node        string
	addr        string
	dialTimeout time.Duration

	mu       sync.Mutex
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	binary   bool // this connection negotiated binary framing
	jsonOnly bool // sticky: never attempt binary negotiation again
}

// NewClient creates a client for the agent of node (its name) at addr.
func NewClient(node, addr string) *Client {
	return &Client{node: node, addr: addr, dialTimeout: 2 * time.Second}
}

// Node returns the remote node's name.
func (c *Client) Node() string { return c.node }

// ForceJSON pins the client to the JSON wire protocol: streaming opens
// report agent.ErrStreamUnsupported, so data pushes take the legacy
// stop-and-wait path. For benchmarks and mixed-version deployments.
func (c *Client) ForceJSON() {
	c.mu.Lock()
	c.jsonOnly = true
	c.mu.Unlock()
}

// Close drops the connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked()
}

// ensureConnLocked dials if no connection is up. Fresh connections speak
// JSON until negotiateLocked upgrades them.
func (c *Client) ensureConnLocked(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return fmt.Errorf("agentrpc: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.br = bufio.NewReaderSize(conn, 1<<20)
	c.bw = bufio.NewWriterSize(conn, 64<<10)
	c.binary = false
	return nil
}

// negotiateLocked upgrades the current connection to binary framing with a
// hello round trip. It runs lazily, on the first OpenImport rather than at
// dial time, so pure-JSON control traffic against any server never pays
// for (or trips over) negotiation. A server that fails to ack — an old
// JSON-only build chokes on the magic byte and drops the connection — pins
// the client to JSON permanently; senders then fall back to the legacy
// per-batch path. Bounded by the dial timeout (or the caller's earlier
// deadline) so a silent peer cannot wedge us.
func (c *Client) negotiateLocked(ctx context.Context) {
	if c.binary || c.jsonOnly {
		return
	}
	deadline := time.Now().Add(c.dialTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = c.conn.SetDeadline(deadline)
	negotiated := false
	if err := writeFrame(c.bw, ftHello, []byte(c.node)); err == nil {
		if typ, payload, err := readFrame(c.br); err == nil {
			putBuf(payload)
			negotiated = typ == ftHelloAck
		}
	}
	if !negotiated {
		c.dropLocked()
		c.jsonOnly = true
		return
	}
	_ = c.conn.SetDeadline(time.Time{})
	c.binary = true
}

// call performs one serialized RPC round trip. The context's deadline is
// propagated on the wire (TimeoutMS) and applied to the connection; live
// cancellation closes the connection so a blocked read aborts immediately.
// Transport failures come back retryable; errors the remote agent itself
// reported are marked taskgroup.Permanent, because the operation executed
// and failed deterministically.
func (c *Client) call(ctx context.Context, req *request) (*response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConnLocked(ctx); err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		if remaining := time.Until(deadline); remaining > 0 {
			req.TimeoutMS = int64(remaining / time.Millisecond)
		}
		_ = c.conn.SetDeadline(deadline)
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
	// Unblock the round trip on cancellation by closing the socket: the
	// pending write/read fails and the connection is redialled later.
	conn := c.conn
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer func() {
		if !stop() {
			c.dropLocked()
		}
	}()
	data, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("agentrpc: encode: %w", err)
	}
	data = append(data, '\n')
	if _, err = c.bw.Write(data); err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		c.dropLocked()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("agentrpc: send to %s: %w", c.addr, err)
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		c.dropLocked()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("agentrpc: recv from %s: %w", c.addr, err)
	}
	var resp response
	if err := json.Unmarshal(line, &resp); err != nil {
		c.dropLocked()
		return nil, fmt.Errorf("agentrpc: recv from %s: %w", c.addr, err)
	}
	if !resp.OK {
		return nil, taskgroup.Permanent(fmt.Errorf("%w: %s", ErrRemote, resp.Error))
	}
	return &resp, nil
}

func (c *Client) dropLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.br, c.bw = nil, nil
		c.binary = false
	}
}

// Score implements core.MasterAgent.
func (c *Client) Score(ctx context.Context) agent.ScoreReport {
	resp, err := c.call(ctx, &request{Op: OpScore})
	if err != nil || resp.Score == nil {
		return agent.ScoreReport{Node: c.node}
	}
	return *resp.Score
}

// SendMetadata implements core.MasterAgent.
func (c *Client) SendMetadata(ctx context.Context, retained []string) error {
	_, err := c.call(ctx, &request{Op: OpSendMetadata, Retained: retained})
	return err
}

// ComputeTakes implements core.MasterAgent.
func (c *Client) ComputeTakes(ctx context.Context) (agent.Takes, error) {
	resp, err := c.call(ctx, &request{Op: OpComputeTakes})
	if err != nil {
		// Map the remote no-metadata condition back onto the sentinel so
		// the Master's errors.Is handling works across the wire.
		if errors.Is(err, ErrRemote) && containsNoMetadata(err) {
			return nil, agent.ErrNoMetadata
		}
		return nil, err
	}
	return resp.Takes, nil
}

func containsNoMetadata(err error) bool {
	return err != nil && strings.Contains(err.Error(), agent.ErrNoMetadata.Error())
}

// SendData implements core.MasterAgent.
func (c *Client) SendData(ctx context.Context, target string, takes map[int]int, retained []string) (agent.SendStats, error) {
	resp, err := c.call(ctx, &request{Op: OpSendData, Target: target, Takes: takes, Retained: retained})
	if err != nil {
		return agent.SendStats{}, err
	}
	if resp.Stats == nil {
		return agent.SendStats{}, nil
	}
	return *resp.Stats, nil
}

// HashSplit implements core.MasterAgent.
func (c *Client) HashSplit(ctx context.Context, newMembers, fullMembership []string) (agent.SendStats, error) {
	resp, err := c.call(ctx, &request{Op: OpHashSplit, NewMembers: newMembers, Full: fullMembership})
	if err != nil {
		return agent.SendStats{}, err
	}
	if resp.Stats == nil {
		return agent.SendStats{}, nil
	}
	return *resp.Stats, nil
}

// OfferMetadata implements agent.Peer.
func (c *Client) OfferMetadata(ctx context.Context, from string, metas map[int][]cache.ItemMeta) error {
	_, err := c.call(ctx, &request{Op: OpOfferMetadata, From: from, Metas: metas})
	return err
}

// ImportData implements agent.Peer.
func (c *Client) ImportData(ctx context.Context, from string, pairs []cache.KV) error {
	_, err := c.call(ctx, &request{Op: OpImportData, From: from, Pairs: pairs})
	return err
}

// OpenImport implements agent.StreamPeer: it opens a windowed binary
// import stream on the persistent connection. The client mutex is held
// for the whole session (sessions and control calls are serialized, as
// before), released by Close or Abort.
func (c *Client) OpenImport(ctx context.Context, from string, epoch, fingerprint uint64, window int) (agent.ImportSession, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if window < 1 {
		window = 1
	}
	c.mu.Lock()
	opened := false
	defer func() {
		if !opened {
			c.mu.Unlock()
		}
	}()
	if c.jsonOnly {
		return nil, agent.ErrStreamUnsupported
	}
	if err := c.ensureConnLocked(ctx); err != nil {
		return nil, err
	}
	c.negotiateLocked(ctx)
	if !c.binary {
		return nil, agent.ErrStreamUnsupported
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(deadline)
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
	conn := c.conn
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	fail := func(err error) error {
		stop()
		c.dropLocked() // the stream state is unknown: start clean next time
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return err
	}
	buf := getBuf()
	buf = appendImportOpen(buf, from, epoch, fingerprint, window)
	err := writeFrame(c.bw, ftImportOpen, buf)
	wire := int64(len(buf) + frameHeaderLen)
	putBuf(buf)
	if err != nil {
		return nil, fail(fmt.Errorf("agentrpc: open import to %s: %w", c.addr, err))
	}
	typ, payload, err := readFrame(c.br)
	if err != nil {
		return nil, fail(fmt.Errorf("agentrpc: open import to %s: %w", c.addr, err))
	}
	if typ != ftOpenAck {
		putBuf(payload)
		return nil, fail(fmt.Errorf("agentrpc: open import to %s: unexpected frame type %d", c.addr, typ))
	}
	hw, remoteErr, derr := decodeOpenAck(payload)
	putBuf(payload)
	if derr != nil {
		return nil, fail(fmt.Errorf("agentrpc: open import to %s: %w", c.addr, derr))
	}
	if remoteErr != "" {
		return nil, fail(fmt.Errorf("%w: %s", ErrRemote, remoteErr))
	}
	opened = true
	return &importSession{c: c, stop: stop, from: from, epoch: epoch, window: window, hw: hw, wire: wire}, nil
}

// importSession is one open binary stream. It is single-goroutine (the
// sender's push loop) and holds the client mutex for its lifetime: Send
// pipelines frames until the window fills, then absorbs backpressure by
// reading one ack inline; Close drains the remaining acks. TCP plus the
// server's in-order applier guarantee acks arrive in sequence order.
type importSession struct {
	c      *Client
	stop   func() bool
	from   string
	epoch  uint64
	window int

	outstanding int
	hw          uint64
	imported    int
	wire        int64
	done        bool
}

func (s *importSession) HighWater() uint64 { return s.hw }

func (s *importSession) Send(ctx context.Context, seq uint64, pairs []cache.KV) error {
	if s.done {
		return errors.New("agentrpc: import session is closed")
	}
	if err := ctx.Err(); err != nil {
		s.fail()
		return err
	}
	for s.outstanding >= s.window {
		if err := s.readAck(); err != nil {
			s.fail()
			return err
		}
	}
	buf := getBuf()
	buf = appendImportBatch(buf, s.from, s.epoch, seq, pairs)
	err := writeFrame(s.c.bw, ftImportBatch, buf)
	s.wire += int64(len(buf) + frameHeaderLen)
	putBuf(buf)
	if err != nil {
		s.fail()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return fmt.Errorf("agentrpc: send batch to %s: %w", s.c.addr, err)
	}
	s.outstanding++
	return nil
}

func (s *importSession) readAck() error {
	typ, payload, err := readFrame(s.c.br)
	if err != nil {
		return fmt.Errorf("agentrpc: recv ack from %s: %w", s.c.addr, err)
	}
	if typ != ftBatchAck {
		putBuf(payload)
		return fmt.Errorf("agentrpc: unexpected frame type %d awaiting ack", typ)
	}
	_, hw, imported, remoteErr, derr := decodeBatchAck(payload)
	putBuf(payload)
	if derr != nil {
		return fmt.Errorf("agentrpc: recv ack from %s: %w", s.c.addr, derr)
	}
	s.outstanding--
	if remoteErr != "" {
		return fmt.Errorf("%w: %s", ErrRemote, remoteErr)
	}
	s.hw = hw
	s.imported += imported
	return nil
}

func (s *importSession) Close(ctx context.Context) (agent.ImportSummary, error) {
	if s.done {
		return agent.ImportSummary{}, errors.New("agentrpc: import session is closed")
	}
	for s.outstanding > 0 {
		if err := s.readAck(); err != nil {
			s.fail()
			if ctxErr := ctx.Err(); ctxErr != nil {
				return agent.ImportSummary{}, ctxErr
			}
			return agent.ImportSummary{}, err
		}
	}
	s.finish(false)
	return agent.ImportSummary{HighWater: s.hw, Imported: s.imported, WireBytes: s.wire}, nil
}

func (s *importSession) Abort() {
	if !s.done {
		// The stream may hold unacknowledged frames; the connection is no
		// longer in a known state, so drop it.
		s.fail()
	}
}

// fail tears the session down dropping the connection (it may be
// desynchronized); finish releases it cleanly.
func (s *importSession) fail() { s.finishSession(true) }

func (s *importSession) finish(drop bool) { s.finishSession(drop) }

func (s *importSession) finishSession(drop bool) {
	s.done = true
	if !s.stop() {
		drop = true // ctx fired: the socket was closed under us
	}
	if drop {
		s.c.dropLocked()
	} else if s.c.conn != nil {
		_ = s.c.conn.SetDeadline(time.Time{})
	}
	s.c.mu.Unlock()
}

var (
	_ agent.Peer       = (*Client)(nil)
	_ agent.StreamPeer = (*Client)(nil)
)

// AddressBook maps node names to their agent RPC addresses. It implements
// agent.Transport (peer dialling for Agents) and serves as the Master's
// core.Directory in TCP deployments. It is safe for concurrent use.
type AddressBook struct {
	mu      sync.RWMutex
	addrs   map[string]string
	clients map[string]*Client
}

// NewAddressBook creates an empty book.
func NewAddressBook() *AddressBook {
	return &AddressBook{
		addrs:   make(map[string]string),
		clients: make(map[string]*Client),
	}
}

// Register maps a node name to its agent address.
func (b *AddressBook) Register(node, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[node] = addr
	delete(b.clients, node) // force re-dial at the new address
}

// Deregister removes a node.
func (b *AddressBook) Deregister(node string) {
	b.mu.Lock()
	cl := b.clients[node]
	delete(b.addrs, node)
	delete(b.clients, node)
	b.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// client returns (creating if needed) the cached client for node.
func (b *AddressBook) client(node string) (*Client, error) {
	b.mu.RLock()
	cl, ok := b.clients[node]
	b.mu.RUnlock()
	if ok {
		return cl, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if cl, ok := b.clients[node]; ok {
		return cl, nil
	}
	addr, ok := b.addrs[node]
	if !ok {
		return nil, fmt.Errorf("%w: %q", agent.ErrUnknownPeer, node)
	}
	cl = NewClient(node, addr)
	b.clients[node] = cl
	return cl, nil
}

// Peer implements agent.Transport.
func (b *AddressBook) Peer(node string) (agent.Peer, error) {
	return b.client(node)
}

// Agent implements core.Directory (returns a core.MasterAgent).
func (b *AddressBook) Agent(node string) (*Client, error) {
	return b.client(node)
}

// Close drops every cached client connection.
func (b *AddressBook) Close() {
	b.mu.Lock()
	clients := make([]*Client, 0, len(b.clients))
	for _, cl := range b.clients {
		clients = append(clients, cl)
	}
	b.clients = make(map[string]*Client)
	b.mu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
}

var _ agent.Transport = (*AddressBook)(nil)

// Directory adapts an AddressBook to core.Directory, giving the Master
// TCP reach to every agent.
type Directory struct {
	// Book is the backing address book.
	Book *AddressBook
}

// Agent implements core.Directory.
func (d Directory) Agent(node string) (core.MasterAgent, error) {
	return d.Book.Agent(node)
}

var (
	_ core.Directory   = Directory{}
	_ core.MasterAgent = (*Client)(nil)
)
