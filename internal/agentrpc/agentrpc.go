// Package agentrpc carries ElMem's control-plane traffic over TCP:
// Master → Agent commands (scoring, migration phases, hash split) and
// Agent → Agent pushes (metadata offers, data imports). The paper pipes
// metadata and data between nodes over ssh (Section III-D1); we use
// persistent TCP connections with newline-delimited JSON frames, which
// preserves the phase structure while staying dependency-free.
//
// The same wire protocol serves both directions: the Server exposes a
// node's *agent.Agent, the Client implements core.MasterAgent and
// agent.Peer, and the AddressBook maps node names to agent addresses,
// acting as the agent.Transport and core.Directory for TCP deployments.
package agentrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/taskgroup"
)

// Op names one RPC operation.
type Op string

// The control-plane operations.
const (
	OpScore         Op = "score"
	OpSendMetadata  Op = "send_metadata"
	OpComputeTakes  Op = "compute_takes"
	OpSendData      Op = "send_data"
	OpHashSplit     Op = "hash_split"
	OpOfferMetadata Op = "offer_metadata"
	OpImportData    Op = "import_data"
)

// ErrRemote wraps an error string returned by the remote agent.
var ErrRemote = errors.New("agentrpc: remote error")

// request is one wire frame from caller to agent.
type request struct {
	Op Op `json:"op"`

	// TimeoutMS carries the caller's remaining context deadline so the
	// remote agent bounds its own work; 0 means no deadline.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`

	// SendMetadata / SendData share Retained.
	Retained []string `json:"retained,omitempty"`
	// SendData.
	Target string      `json:"target,omitempty"`
	Takes  map[int]int `json:"takes,omitempty"`
	// HashSplit.
	NewMembers []string `json:"newMembers,omitempty"`
	Full       []string `json:"full,omitempty"`
	// OfferMetadata / ImportData.
	From  string                   `json:"from,omitempty"`
	Metas map[int][]cache.ItemMeta `json:"metas,omitempty"`
	Pairs []cache.KV               `json:"pairs,omitempty"`
}

// response is one wire frame back.
type response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	Score *agent.ScoreReport `json:"score,omitempty"`
	Takes agent.Takes        `json:"takes,omitempty"`
	Sent  int                `json:"sent,omitempty"`
}

// Server exposes one node's Agent over TCP.
type Server struct {
	agent *agent.Agent
	ln    net.Listener
	log   *log.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts the RPC server on addr ("127.0.0.1:0" picks a port).
func Serve(addr string, a *agent.Agent, logger *log.Logger) (*Server, error) {
	if a == nil {
		return nil, errors.New("agentrpc: nil agent")
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agentrpc: listen %s: %w", addr, err)
	}
	s := &Server{agent: a, ln: ln, log: logger, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and joins its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	dec := json.NewDecoder(bufio.NewReaderSize(conn, 1<<20))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *request) *response {
	// Rebuild the caller's deadline from the wire so the agent's own loops
	// (per-target pushes, per-batch transfers) stop when the Master's phase
	// budget is spent, even though TCP cannot carry a live cancel signal.
	ctx := context.Background()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	switch req.Op {
	case OpScore:
		rep := s.agent.Score(ctx)
		return &response{OK: true, Score: &rep}
	case OpSendMetadata:
		if err := s.agent.SendMetadata(ctx, req.Retained); err != nil {
			return errResponse(err)
		}
		return &response{OK: true}
	case OpComputeTakes:
		takes, err := s.agent.ComputeTakes(ctx)
		if err != nil {
			return errResponse(err)
		}
		return &response{OK: true, Takes: takes}
	case OpSendData:
		sent, err := s.agent.SendData(ctx, req.Target, req.Takes, req.Retained)
		if err != nil {
			return errResponse(err)
		}
		return &response{OK: true, Sent: sent}
	case OpHashSplit:
		sent, err := s.agent.HashSplit(ctx, req.NewMembers, req.Full)
		if err != nil {
			return errResponse(err)
		}
		return &response{OK: true, Sent: sent}
	case OpOfferMetadata:
		if err := s.agent.OfferMetadata(ctx, req.From, req.Metas); err != nil {
			return errResponse(err)
		}
		return &response{OK: true}
	case OpImportData:
		if err := s.agent.ImportData(ctx, req.From, req.Pairs); err != nil {
			return errResponse(err)
		}
		return &response{OK: true}
	default:
		return &response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func errResponse(err error) *response {
	return &response{Error: err.Error()}
}

// Client talks to one remote Agent. It implements core.MasterAgent and
// agent.Peer over a single persistent connection with serialized calls,
// redialling transparently after failures.
type Client struct {
	node        string
	addr        string
	dialTimeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// NewClient creates a client for the agent of node (its name) at addr.
func NewClient(node, addr string) *Client {
	return &Client{node: node, addr: addr, dialTimeout: 2 * time.Second}
}

// Node returns the remote node's name.
func (c *Client) Node() string { return c.node }

// Close drops the connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// call performs one serialized RPC round trip. The context's deadline is
// propagated on the wire (TimeoutMS) and applied to the connection; live
// cancellation closes the connection so a blocked read aborts immediately.
// Transport failures come back retryable; errors the remote agent itself
// reported are marked taskgroup.Permanent, because the operation executed
// and failed deterministically.
func (c *Client) call(ctx context.Context, req *request) (*response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
		if err != nil {
			return nil, fmt.Errorf("agentrpc: dial %s: %w", c.addr, err)
		}
		c.conn = conn
		c.dec = json.NewDecoder(bufio.NewReaderSize(conn, 1<<20))
		c.enc = json.NewEncoder(conn)
	}
	if deadline, ok := ctx.Deadline(); ok {
		if remaining := time.Until(deadline); remaining > 0 {
			req.TimeoutMS = int64(remaining / time.Millisecond)
		}
		_ = c.conn.SetDeadline(deadline)
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
	// Unblock the round trip on cancellation by closing the socket: the
	// pending Encode/Decode fails and the connection is redialled later.
	conn := c.conn
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer func() {
		if !stop() {
			c.dropLocked()
		}
	}()
	if err := c.enc.Encode(req); err != nil {
		c.dropLocked()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("agentrpc: send to %s: %w", c.addr, err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.dropLocked()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("agentrpc: recv from %s: %w", c.addr, err)
	}
	if !resp.OK {
		return nil, taskgroup.Permanent(fmt.Errorf("%w: %s", ErrRemote, resp.Error))
	}
	return &resp, nil
}

func (c *Client) dropLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// Score implements core.MasterAgent.
func (c *Client) Score(ctx context.Context) agent.ScoreReport {
	resp, err := c.call(ctx, &request{Op: OpScore})
	if err != nil || resp.Score == nil {
		return agent.ScoreReport{Node: c.node}
	}
	return *resp.Score
}

// SendMetadata implements core.MasterAgent.
func (c *Client) SendMetadata(ctx context.Context, retained []string) error {
	_, err := c.call(ctx, &request{Op: OpSendMetadata, Retained: retained})
	return err
}

// ComputeTakes implements core.MasterAgent.
func (c *Client) ComputeTakes(ctx context.Context) (agent.Takes, error) {
	resp, err := c.call(ctx, &request{Op: OpComputeTakes})
	if err != nil {
		// Map the remote no-metadata condition back onto the sentinel so
		// the Master's errors.Is handling works across the wire.
		if errors.Is(err, ErrRemote) && containsNoMetadata(err) {
			return nil, agent.ErrNoMetadata
		}
		return nil, err
	}
	return resp.Takes, nil
}

func containsNoMetadata(err error) bool {
	return err != nil && strings.Contains(err.Error(), agent.ErrNoMetadata.Error())
}

// SendData implements core.MasterAgent.
func (c *Client) SendData(ctx context.Context, target string, takes map[int]int, retained []string) (int, error) {
	resp, err := c.call(ctx, &request{Op: OpSendData, Target: target, Takes: takes, Retained: retained})
	if err != nil {
		return 0, err
	}
	return resp.Sent, nil
}

// HashSplit implements core.MasterAgent.
func (c *Client) HashSplit(ctx context.Context, newMembers, fullMembership []string) (int, error) {
	resp, err := c.call(ctx, &request{Op: OpHashSplit, NewMembers: newMembers, Full: fullMembership})
	if err != nil {
		return 0, err
	}
	return resp.Sent, nil
}

// OfferMetadata implements agent.Peer.
func (c *Client) OfferMetadata(ctx context.Context, from string, metas map[int][]cache.ItemMeta) error {
	_, err := c.call(ctx, &request{Op: OpOfferMetadata, From: from, Metas: metas})
	return err
}

// ImportData implements agent.Peer.
func (c *Client) ImportData(ctx context.Context, from string, pairs []cache.KV) error {
	_, err := c.call(ctx, &request{Op: OpImportData, From: from, Pairs: pairs})
	return err
}

var _ agent.Peer = (*Client)(nil)

// AddressBook maps node names to their agent RPC addresses. It implements
// agent.Transport (peer dialling for Agents) and serves as the Master's
// core.Directory in TCP deployments. It is safe for concurrent use.
type AddressBook struct {
	mu      sync.RWMutex
	addrs   map[string]string
	clients map[string]*Client
}

// NewAddressBook creates an empty book.
func NewAddressBook() *AddressBook {
	return &AddressBook{
		addrs:   make(map[string]string),
		clients: make(map[string]*Client),
	}
}

// Register maps a node name to its agent address.
func (b *AddressBook) Register(node, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[node] = addr
	delete(b.clients, node) // force re-dial at the new address
}

// Deregister removes a node.
func (b *AddressBook) Deregister(node string) {
	b.mu.Lock()
	cl := b.clients[node]
	delete(b.addrs, node)
	delete(b.clients, node)
	b.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// client returns (creating if needed) the cached client for node.
func (b *AddressBook) client(node string) (*Client, error) {
	b.mu.RLock()
	cl, ok := b.clients[node]
	b.mu.RUnlock()
	if ok {
		return cl, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if cl, ok := b.clients[node]; ok {
		return cl, nil
	}
	addr, ok := b.addrs[node]
	if !ok {
		return nil, fmt.Errorf("%w: %q", agent.ErrUnknownPeer, node)
	}
	cl = NewClient(node, addr)
	b.clients[node] = cl
	return cl, nil
}

// Peer implements agent.Transport.
func (b *AddressBook) Peer(node string) (agent.Peer, error) {
	return b.client(node)
}

// Agent implements core.Directory (returns a core.MasterAgent).
func (b *AddressBook) Agent(node string) (*Client, error) {
	return b.client(node)
}

// Close drops every cached client connection.
func (b *AddressBook) Close() {
	b.mu.Lock()
	clients := make([]*Client, 0, len(b.clients))
	for _, cl := range b.clients {
		clients = append(clients, cl)
	}
	b.clients = make(map[string]*Client)
	b.mu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
}

var _ agent.Transport = (*AddressBook)(nil)

// Directory adapts an AddressBook to core.Directory, giving the Master
// TCP reach to every agent.
type Directory struct {
	// Book is the backing address book.
	Book *AddressBook
}

// Agent implements core.Directory.
func (d Directory) Agent(node string) (core.MasterAgent, error) {
	return d.Book.Agent(node)
}

var (
	_ core.Directory   = Directory{}
	_ core.MasterAgent = (*Client)(nil)
)
