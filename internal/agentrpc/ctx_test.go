package agentrpc

// Context-propagation tests for the RPC transport: cancelling the caller's
// context must unblock an in-flight round trip, the remaining deadline must
// ride the wire so the remote agent bounds its own work, and remote
// application errors must come back marked permanent so the Master's retry
// policy does not replay them.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/taskgroup"
)

// TestClientCancelUnblocksInflightCall parks a call against a server that
// never responds and asserts cancellation aborts it promptly.
func TestClientCancelUnblocksInflightCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Swallow the request, never reply.
		buf := make([]byte, 1<<16)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	cl := NewClient("mute", ln.Addr().String())
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	err = cl.SendMetadata(ctx, []string{"x"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to unblock the call", elapsed)
	}
}

// TestClientDeadlineRidesTheWire decodes the request frame and asserts the
// remaining context deadline arrived as TimeoutMS.
func TestClientDeadlineRidesTheWire(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan int64, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := json.NewDecoder(bufio.NewReader(conn))
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		got <- req.TimeoutMS
		_ = json.NewEncoder(conn).Encode(&response{OK: true})
	}()

	cl := NewClient("echo", ln.Addr().String())
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.SendMetadata(ctx, []string{"x"}); err != nil {
		t.Fatal(err)
	}
	select {
	case ms := <-got:
		if ms <= 0 || ms > 5000 {
			t.Fatalf("TimeoutMS = %d, want the remaining deadline in (0, 5000]", ms)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never saw the request")
	}
}

// TestRemoteErrorsAreMarkedPermanent: an error the remote agent reported
// means the operation executed and failed deterministically — the retry
// loop must not replay it.
func TestRemoteErrorsAreMarkedPermanent(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := json.NewDecoder(bufio.NewReader(conn))
		enc := json.NewEncoder(conn)
		for {
			var req request
			if err := dec.Decode(&req); err != nil {
				return
			}
			if err := enc.Encode(&response{Error: "remote application failure"}); err != nil {
				return
			}
		}
	}()

	cl := NewClient("failing", ln.Addr().String())
	defer cl.Close()
	err = cl.SendMetadata(context.Background(), []string{"x"})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if !taskgroup.IsPermanent(err) {
		t.Fatal("remote application error not marked permanent")
	}
	// Transport-level errors stay retryable.
	cl2 := NewClient("unreachable", "127.0.0.1:1")
	defer cl2.Close()
	if err := cl2.SendMetadata(context.Background(), []string{"x"}); err == nil || taskgroup.IsPermanent(err) {
		t.Fatalf("dial failure should be retryable, got %v", err)
	}
}
