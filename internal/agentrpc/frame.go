package agentrpc

// Binary bulk framing for the phase-3 data plane. JSON stays on the wire
// for the low-volume control ops (score, metadata, takes, legacy
// ImportData), but bulk KV movement pays ~33% base64 inflation plus
// per-pair marshalling there, so import streams switch to length-prefixed
// binary frames:
//
//	frame   = magic(0xEB) version(1) type(1) payloadLen(u32 BE) payload
//	pair    = keyLen(uvarint) key valLen(uvarint) val flags(u32 BE) ts(i64 BE)
//
// 0xEB can never start a JSON value, so a server can peek one byte and
// dispatch either protocol on the same connection; a client negotiates by
// sending a hello frame after dialling — an old JSON-only server fails to
// parse it and drops the connection, and the client redials in JSON-only
// mode. Frame payload buffers are pooled (sync.Pool) on both sides, and
// decoded values alias the frame buffer (BatchImport copies into slab
// chunks), so a steady-state stream allocates only keys.
//
// Frame types:
//
//	hello       c→s  sender node name; answered by helloAck (empty)
//	importOpen  c→s  from, epoch, fingerprint, window
//	openAck     s→c  status, highWater | error
//	importBatch c→s  from, epoch, seq, pairs (coldest-first)
//	batchAck    s→c  status, seq, highWater, imported | error
//
// Acks carry the receiver's applied-sequence high-water mark, which is
// what makes a retried send resumable: see agent.ImportOpen/ImportFrame.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/cache"
)

const (
	frameMagic     = 0xEB
	frameVersion   = 1
	frameHeaderLen = 7 // magic + version + type + u32 payload length

	// maxFramePayload is a sanity cap protecting both sides from a
	// corrupt or hostile length prefix. Batches are bounded far below it
	// (WithBatchBytes, default 256 KiB).
	maxFramePayload = 64 << 20
)

// The frame types.
const (
	ftHello byte = iota + 1
	ftHelloAck
	ftImportOpen
	ftOpenAck
	ftImportBatch
	ftBatchAck
)

// tsZeroSentinel encodes time.Time{} on the wire; any real MRU timestamp
// is a plausible UnixNano.
const tsZeroSentinel = math.MinInt64

var errFrameTruncated = errors.New("agentrpc: truncated frame payload")

// bufPool recycles frame payload buffers across encodes and decodes.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

func putBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxFramePayload {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// writeFrame frames and flushes one payload. Callers serialize access to
// w themselves.
func writeFrame(w *bufio.Writer, typ byte, payload []byte) error {
	var hdr [frameHeaderLen]byte
	hdr[0] = frameMagic
	hdr[1] = frameVersion
	hdr[2] = typ
	binary.BigEndian.PutUint32(hdr[3:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one frame, returning its type and pooled payload; the
// caller must putBuf the payload when done with it.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != frameMagic {
		return 0, nil, fmt.Errorf("agentrpc: bad frame magic 0x%02x", hdr[0])
	}
	if hdr[1] != frameVersion {
		return 0, nil, fmt.Errorf("agentrpc: unsupported frame version %d", hdr[1])
	}
	n := binary.BigEndian.Uint32(hdr[3:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("agentrpc: frame payload %d exceeds cap %d", n, maxFramePayload)
	}
	buf := getBuf()
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		putBuf(buf)
		return 0, nil, err
	}
	return hdr[2], buf, nil
}

// cursor is a bounds-checked payload reader.
type cursor struct{ b []byte }

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		return 0, errFrameTruncated
	}
	c.b = c.b[n:]
	return v, nil
}

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || n > len(c.b) {
		return nil, errFrameTruncated
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	b, err := c.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// --- importOpen ---

func appendImportOpen(b []byte, from string, epoch, fp uint64, window int) []byte {
	b = appendStr(b, from)
	b = binary.AppendUvarint(b, epoch)
	b = binary.AppendUvarint(b, fp)
	b = binary.AppendUvarint(b, uint64(window))
	return b
}

func decodeImportOpen(payload []byte) (from string, epoch, fp uint64, window int, err error) {
	c := cursor{payload}
	if from, err = c.str(); err != nil {
		return
	}
	if epoch, err = c.uvarint(); err != nil {
		return
	}
	if fp, err = c.uvarint(); err != nil {
		return
	}
	w, err := c.uvarint()
	if err != nil {
		return
	}
	window = int(w)
	return
}

// --- openAck / batchAck ---

func appendOpenAck(b []byte, highWater uint64, remoteErr string) []byte {
	if remoteErr != "" {
		b = append(b, 0)
		return append(b, remoteErr...)
	}
	b = append(b, 1)
	return binary.AppendUvarint(b, highWater)
}

func decodeOpenAck(payload []byte) (highWater uint64, remoteErr string, err error) {
	c := cursor{payload}
	status, err := c.take(1)
	if err != nil {
		return 0, "", err
	}
	if status[0] == 0 {
		return 0, string(c.b), nil
	}
	hw, err := c.uvarint()
	return hw, "", err
}

func appendBatchAck(b []byte, seq, highWater uint64, imported int, remoteErr string) []byte {
	if remoteErr != "" {
		b = append(b, 0)
		b = binary.AppendUvarint(b, seq)
		return append(b, remoteErr...)
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, highWater)
	return binary.AppendUvarint(b, uint64(imported))
}

func decodeBatchAck(payload []byte) (seq, highWater uint64, imported int, remoteErr string, err error) {
	c := cursor{payload}
	status, err := c.take(1)
	if err != nil {
		return 0, 0, 0, "", err
	}
	if seq, err = c.uvarint(); err != nil {
		return 0, 0, 0, "", err
	}
	if status[0] == 0 {
		return seq, 0, 0, string(c.b), nil
	}
	if highWater, err = c.uvarint(); err != nil {
		return 0, 0, 0, "", err
	}
	n, err := c.uvarint()
	if err != nil {
		return 0, 0, 0, "", err
	}
	return seq, highWater, int(n), "", nil
}

// --- importBatch ---

func appendImportBatch(b []byte, from string, epoch, seq uint64, pairs []cache.KV) []byte {
	b = appendStr(b, from)
	b = binary.AppendUvarint(b, epoch)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(pairs)))
	for i := range pairs {
		p := &pairs[i]
		b = appendStr(b, p.Key)
		b = binary.AppendUvarint(b, uint64(len(p.Value)))
		b = append(b, p.Value...)
		b = binary.BigEndian.AppendUint32(b, p.Flags)
		ts := int64(tsZeroSentinel)
		if !p.LastAccess.IsZero() {
			ts = p.LastAccess.UnixNano()
		}
		b = binary.BigEndian.AppendUint64(b, uint64(ts))
	}
	return b
}

// decodeImportBatch parses a batch frame. The returned pairs' Value
// slices alias payload, which therefore must outlive them (the server
// recycles it only after BatchImport copied the values out).
func decodeImportBatch(payload []byte) (from string, epoch, seq uint64, pairs []cache.KV, err error) {
	c := cursor{payload}
	if from, err = c.str(); err != nil {
		return
	}
	if epoch, err = c.uvarint(); err != nil {
		return
	}
	if seq, err = c.uvarint(); err != nil {
		return
	}
	n, err := c.uvarint()
	if err != nil {
		return
	}
	if n > uint64(len(c.b)) { // each pair costs >= 1 byte: cheap sanity cap
		err = errFrameTruncated
		return
	}
	pairs = make([]cache.KV, 0, n)
	for i := uint64(0); i < n; i++ {
		var p cache.KV
		if p.Key, err = c.str(); err != nil {
			return
		}
		vlen, verr := c.uvarint()
		if verr != nil {
			err = verr
			return
		}
		if p.Value, err = c.take(int(vlen)); err != nil {
			return
		}
		fb, ferr := c.take(4)
		if ferr != nil {
			err = ferr
			return
		}
		p.Flags = binary.BigEndian.Uint32(fb)
		tb, terr := c.take(8)
		if terr != nil {
			err = terr
			return
		}
		if ts := int64(binary.BigEndian.Uint64(tb)); ts != tsZeroSentinel {
			p.LastAccess = time.Unix(0, ts)
		}
		pairs = append(pairs, p)
	}
	return
}
