// Package webtier implements the web/application tier of the paper's
// testbed (Section V-A): each web request names a set of KV pairs; the
// handler multi-gets them from the Memcached tier through the
// consistent-hashing client, serves misses from the database (sleeping the
// modeled access latency in real-time mode), inserts fetched pairs back
// into the cache, and reports the request's response time as the average
// of its KV fetch latencies.
package webtier

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/store"
)

// ErrBadConfig reports invalid construction parameters.
var ErrBadConfig = errors.New("webtier: invalid configuration")

// Result summarizes one handled web request.
type Result struct {
	// RT is the response time: the mean of the per-KV latencies.
	RT time.Duration
	// Hits and Misses count cache outcomes among the KV fetches.
	Hits   int
	Misses int
}

// Handler serves web requests against a cache cluster and database.
type Handler struct {
	cluster *client.Cluster
	db      *store.DB

	// sleepDB, when true, actually sleeps the modeled DB latency (real-
	// time mode); otherwise the latency is only accounted.
	sleepDB bool
	// insertOnMiss controls whether DB-fetched pairs are written back to
	// the cache (the paper's client does this).
	insertOnMiss bool

	mu       sync.Mutex
	handled  uint64
	kvHits   uint64
	kvMisses uint64
}

// Option configures a Handler.
type Option interface {
	apply(*options)
}

type options struct {
	sleepDB      bool
	insertOnMiss bool
}

type sleepOption bool

func (o sleepOption) apply(opts *options) { opts.sleepDB = bool(o) }

// WithRealSleep makes the handler sleep the modeled DB latency, for live
// TCP deployments where wall time is the experiment clock.
func WithRealSleep() Option { return sleepOption(true) }

type insertOption bool

func (o insertOption) apply(opts *options) { opts.insertOnMiss = bool(o) }

// WithoutInsertOnMiss disables cache fill on miss (for ablations).
func WithoutInsertOnMiss() Option { return insertOption(false) }

// New creates a Handler.
func New(cluster *client.Cluster, db *store.DB, opts ...Option) (*Handler, error) {
	if cluster == nil || db == nil {
		return nil, fmt.Errorf("%w: nil cluster or db", ErrBadConfig)
	}
	o := options{insertOnMiss: true}
	for _, opt := range opts {
		opt.apply(&o)
	}
	return &Handler{
		cluster:      cluster,
		db:           db,
		sleepDB:      o.sleepDB,
		insertOnMiss: o.insertOnMiss,
	}, nil
}

// Handle serves one web request for the given keys.
func (h *Handler) Handle(keys []string) (Result, error) {
	if len(keys) == 0 {
		return Result{}, fmt.Errorf("%w: empty key set", ErrBadConfig)
	}
	var out Result
	t0 := time.Now()
	values, err := h.cluster.MultiGet(keys)
	if err != nil {
		return Result{}, fmt.Errorf("webtier: %w", err)
	}
	cacheLat := time.Since(t0)

	var total time.Duration
	perKVCache := cacheLat / time.Duration(len(keys))
	for _, key := range keys {
		if _, ok := values[key]; ok {
			out.Hits++
			total += perKVCache
			continue
		}
		out.Misses++
		value, dbLat, err := h.db.Get(key)
		if err != nil {
			return Result{}, fmt.Errorf("webtier: db: %w", err)
		}
		if h.sleepDB {
			time.Sleep(dbLat)
		}
		total += perKVCache + dbLat
		if h.insertOnMiss {
			// A racing set failure only costs a future miss.
			_ = h.cluster.Set(key, value)
		}
	}
	out.RT = total / time.Duration(len(keys))

	h.mu.Lock()
	h.handled++
	h.kvHits += uint64(out.Hits)
	h.kvMisses += uint64(out.Misses)
	h.mu.Unlock()
	return out, nil
}

// Stats reports cumulative counters.
func (h *Handler) Stats() (handled, kvHits, kvMisses uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.handled, h.kvHits, h.kvMisses
}
