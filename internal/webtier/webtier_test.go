package webtier

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/workload"
)

func newHandler(t *testing.T, nodes int, opts ...Option) (*Handler, *client.Cluster) {
	t.Helper()
	members := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		// Enough pages to cover every slab class the dataset produces.
		cc, err := cache.New(8 * cache.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		s, err := server.Listen("127.0.0.1:0", cc)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		members[i] = s.Addr()
	}
	cl, err := client.New(members)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	dataset, err := store.NewDataset(10_000, store.WithSizeBounds(1, 128))
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.NewDB(dataset, store.LatencyModel{
		Base:     100 * time.Microsecond,
		Capacity: 100_000,
		Max:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(cl, db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return h, cl
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig")
	}
}

func TestHandleMissThenHit(t *testing.T) {
	h, _ := newHandler(t, 2)
	keys := []string{workload.KeyName(1), workload.KeyName(2)}

	first, err := h.Handle(keys)
	if err != nil {
		t.Fatal(err)
	}
	if first.Misses != 2 || first.Hits != 0 {
		t.Fatalf("first = %+v, want all misses", first)
	}

	second, err := h.Handle(keys)
	if err != nil {
		t.Fatal(err)
	}
	if second.Hits != 2 || second.Misses != 0 {
		t.Fatalf("second = %+v, want all hits (insert-on-miss)", second)
	}
	if second.RT <= 0 || first.RT <= 0 {
		t.Fatal("non-positive RTs")
	}

	handled, hits, misses := h.Stats()
	if handled != 2 || hits != 2 || misses != 2 {
		t.Fatalf("stats = %d/%d/%d", handled, hits, misses)
	}
}

func TestHandleWithoutInsertOnMiss(t *testing.T) {
	h, _ := newHandler(t, 1, WithoutInsertOnMiss())
	keys := []string{workload.KeyName(7)}
	if _, err := h.Handle(keys); err != nil {
		t.Fatal(err)
	}
	res, err := h.Handle(keys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 1 {
		t.Fatalf("res = %+v, want repeat miss without insert", res)
	}
}

func TestHandleEmptyKeys(t *testing.T) {
	h, _ := newHandler(t, 1)
	if _, err := h.Handle(nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

func TestHandleUnknownKey(t *testing.T) {
	h, _ := newHandler(t, 1)
	if _, err := h.Handle([]string{"not-a-dataset-key"}); err == nil {
		t.Fatal("want error for key outside dataset")
	}
}

func TestHandleManyKeysSpreadAcrossNodes(t *testing.T) {
	h, _ := newHandler(t, 3)
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = workload.KeyName(uint64(i))
	}
	if _, err := h.Handle(keys); err != nil {
		t.Fatal(err)
	}
	res, err := h.Handle(keys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 20 {
		t.Fatalf("hits = %d, want 20", res.Hits)
	}
}

func TestRTReflectsDBLatency(t *testing.T) {
	h, _ := newHandler(t, 1)
	// All misses: RT must be at least the DB base latency.
	var keys []string
	for i := 100; i < 110; i++ {
		keys = append(keys, workload.KeyName(uint64(i)))
	}
	res, err := h.Handle(keys)
	if err != nil {
		t.Fatal(err)
	}
	if res.RT < 100*time.Microsecond {
		t.Fatalf("all-miss RT %v below DB base latency", res.RT)
	}
}

func TestHandleSurvivesMembershipChange(t *testing.T) {
	h, cl := newHandler(t, 3)
	keys := []string{workload.KeyName(1)}
	if _, err := h.Handle(keys); err != nil {
		t.Fatal(err)
	}
	members := cl.Members()
	cl.MembershipChanged(members[:2])
	for i := 0; i < 20; i++ {
		if _, err := h.Handle([]string{workload.KeyName(uint64(i))}); err != nil {
			t.Fatalf("request %d after membership change: %v", i, err)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	h, _ := newHandler(t, 1)
	for i := 0; i < 5; i++ {
		if _, err := h.Handle([]string{workload.KeyName(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	handled, _, misses := h.Stats()
	if handled != 5 {
		t.Fatalf("handled = %d, want 5", handled)
	}
	if misses != 5 {
		t.Fatalf("misses = %d, want 5 (distinct keys)", misses)
	}
	_ = fmt.Sprintf // keep fmt imported for future use
}
