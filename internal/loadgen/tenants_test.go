package loadgen

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func validTenantConfig() TenantConfig {
	return TenantConfig{
		Duration:     250 * time.Millisecond,
		Rate:         400,
		KVPerRequest: 4,
		Seed:         1,
		Tenants: []TenantSpec{
			{Name: "a", Keys: 100, Share: 1},
			{Name: "b", Keys: 100, Share: 3},
		},
	}
}

func TestTenantConfigValidation(t *testing.T) {
	h := HandlerFunc(func([]string) (time.Duration, int, int, error) {
		return time.Millisecond, 1, 0, nil
	})
	tests := []struct {
		name   string
		mutate func(*TenantConfig)
	}{
		{name: "zero duration", mutate: func(c *TenantConfig) { c.Duration = 0 }},
		{name: "zero rate", mutate: func(c *TenantConfig) { c.Rate = 0 }},
		{name: "zero kv", mutate: func(c *TenantConfig) { c.KVPerRequest = 0 }},
		{name: "no tenants", mutate: func(c *TenantConfig) { c.Tenants = nil }},
		{name: "unnamed tenant", mutate: func(c *TenantConfig) { c.Tenants[0].Name = "" }},
		{name: "zero keys", mutate: func(c *TenantConfig) { c.Tenants[0].Keys = 0 }},
		{name: "zero share", mutate: func(c *TenantConfig) { c.Tenants[1].Share = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validTenantConfig()
			tt.mutate(&cfg)
			if _, err := RunTenants(context.Background(), cfg, h); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
		})
	}
	if _, err := RunTenants(context.Background(), validTenantConfig(), nil); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig for nil handler")
	}
}

// TestRunTenantsRoutesByShareAndPrefix drives the mix and checks every key
// carries its tenant's prefix and the request split tracks the 1:3 shares.
func TestRunTenantsRoutesByShareAndPrefix(t *testing.T) {
	var mu sync.Mutex
	perPrefix := map[string]int{}
	h := HandlerFunc(func(keys []string) (time.Duration, int, int, error) {
		mu.Lock()
		defer mu.Unlock()
		for _, k := range keys {
			i := strings.IndexByte(k, '/')
			if i < 0 {
				t.Errorf("key %q has no tenant prefix", k)
				continue
			}
			perPrefix[k[:i]]++
		}
		return time.Millisecond, len(keys), 0, nil
	})
	rep, err := RunTenants(context.Background(), validTenantConfig(), h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	mu.Lock()
	defer mu.Unlock()
	if perPrefix["a"] == 0 || perPrefix["b"] == 0 {
		t.Fatalf("tenant traffic split = %v, both must flow", perPrefix)
	}
	if perPrefix["b"] <= perPrefix["a"] {
		t.Fatalf("share-3 tenant (%d keys) not above share-1 tenant (%d keys)",
			perPrefix["b"], perPrefix["a"])
	}
	var reqs uint64
	for _, o := range rep.Tenants {
		reqs += o.Requests
	}
	if reqs == 0 || rep.Tenants[0].Name != "a" || rep.Tenants[1].Name != "b" {
		t.Fatalf("per-tenant outcomes wrong: %+v", rep.Tenants)
	}
}

// TestRunTenantsShiftExpandsKeyspace checks the noisy-neighbor phase
// change: after ShiftFrac, a shifting tenant draws from the multiplied
// keyspace (key ranks beyond the original footprint appear).
func TestRunTenantsShiftExpandsKeyspace(t *testing.T) {
	cfg := validTenantConfig()
	cfg.Duration = 400 * time.Millisecond
	cfg.ShiftFrac = 0.25
	cfg.Tenants = []TenantSpec{
		{Name: "noisy", Keys: 10, ZipfS: 1.01, Share: 1, Shift: 1000},
	}
	var mu sync.Mutex
	sawBeyond := false
	h := HandlerFunc(func(keys []string) (time.Duration, int, int, error) {
		mu.Lock()
		defer mu.Unlock()
		for _, k := range keys {
			// Keys are "noisy/k<zero-padded rank>"; the original keyspace
			// holds ranks 0..9, so any rank >= 10 proves the shift.
			i := strings.IndexByte(k, 'k')
			if i < 0 {
				t.Errorf("malformed key %q", k)
				continue
			}
			rank, err := strconv.ParseUint(k[i+1:], 10, 64)
			if err != nil {
				t.Errorf("malformed rank in key %q", k)
				continue
			}
			if rank >= 10 {
				sawBeyond = true
			}
		}
		return time.Millisecond, len(keys), 0, nil
	})
	if _, err := RunTenants(context.Background(), cfg, h); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !sawBeyond {
		t.Fatal("no key beyond the pre-shift keyspace observed after the phase change")
	}
}
