package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// Multi-tenant mode: each web request belongs to one named tenant, drawn
// by request-rate share, and fetches keys from that tenant's own keyspace
// ("<name>/k...."), Zipf skew, and footprint. A tenant may carry a mid-run
// phase shift — its footprint multiplies at ShiftFrac of the run — which
// is the "noisy neighbor" scenario the memory arbiter exists for: one
// tenant's working set explodes and a static partition either starves it
// or lets it trample everyone else.

// TenantSpec describes one tenant's workload.
type TenantSpec struct {
	// Name prefixes every key as "<Name>/".
	Name string
	// Keys is the tenant's keyspace size.
	Keys uint64
	// ZipfS is the tenant's popularity skew (default 0.99).
	ZipfS float64
	// Share is the tenant's relative request-rate weight.
	Share float64
	// Shift, when > 0, multiplies the tenant's keyspace at ShiftFrac of
	// the run (a fresh Zipf over Keys×Shift keys): the noisy-neighbor
	// phase change. 0 means no shift.
	Shift float64
}

// TenantConfig parameterizes a multi-tenant run.
type TenantConfig struct {
	// Duration bounds the run.
	Duration time.Duration
	// Rate is the combined request rate (req/s) across tenants.
	Rate float64
	// KVPerRequest is the multi-get size.
	KVPerRequest int
	// Concurrency bounds in-flight requests (default 64).
	Concurrency int
	// Seed drives randomness.
	Seed int64
	// Tenants is the workload mix (at least one).
	Tenants []TenantSpec
	// ShiftFrac is the run fraction at which shifting tenants change
	// phase (default 0.5).
	ShiftFrac float64
}

func (c TenantConfig) validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("%w: Duration %v", ErrBadConfig, c.Duration)
	case c.Rate <= 0:
		return fmt.Errorf("%w: Rate %v", ErrBadConfig, c.Rate)
	case c.KVPerRequest < 1:
		return fmt.Errorf("%w: KVPerRequest %d", ErrBadConfig, c.KVPerRequest)
	case len(c.Tenants) == 0:
		return fmt.Errorf("%w: no tenants", ErrBadConfig)
	}
	for _, t := range c.Tenants {
		switch {
		case t.Name == "":
			return fmt.Errorf("%w: unnamed tenant", ErrBadConfig)
		case t.Keys == 0:
			return fmt.Errorf("%w: tenant %s has zero keyspace", ErrBadConfig, t.Name)
		case t.Share <= 0:
			return fmt.Errorf("%w: tenant %s share %v", ErrBadConfig, t.Name, t.Share)
		}
	}
	return nil
}

// TenantOutcome is one tenant's side of a TenantReport.
type TenantOutcome struct {
	Name                   string
	Requests, Hits, Misses uint64
}

// HitRate is the tenant's KV hit fraction, 0 when idle.
func (o TenantOutcome) HitRate() float64 {
	if o.Hits+o.Misses == 0 {
		return 0
	}
	return float64(o.Hits) / float64(o.Hits+o.Misses)
}

// TenantReport is the outcome of RunTenants.
type TenantReport struct {
	Sent, Errors uint64
	AchievedRate float64
	// Series is the per-second aggregate hit rate and P95.
	Series []metrics.SecondStat
	// Tenants has one outcome per configured tenant, same order.
	Tenants []TenantOutcome
}

// RunTenants drives the handler with the multi-tenant mix until the
// duration elapses or ctx is cancelled.
func RunTenants(ctx context.Context, cfg TenantConfig, h Handler) (*TenantReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if h == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrBadConfig)
	}
	concurrency := cfg.Concurrency
	if concurrency <= 0 {
		concurrency = 64
	}
	shiftFrac := cfg.ShiftFrac
	if shiftFrac <= 0 || shiftFrac >= 1 {
		shiftFrac = 0.5
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	gens := make([]*workload.Generator, len(cfg.Tenants))
	totalShare := 0.0
	for i, t := range cfg.Tenants {
		s := t.ZipfS
		if s == 0 {
			s = 0.99
		}
		g, err := workload.NewGenerator(rand.New(rand.NewSource(cfg.Seed+int64(i)+1)), t.Keys,
			workload.WithZipfS(s))
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", t.Name, err)
		}
		gens[i] = g
		totalShare += t.Share
	}

	start := time.Now()
	recorder := metrics.NewRecorder(start)
	outcomes := make([]TenantOutcome, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		outcomes[i].Name = t.Name
	}
	var (
		mu      sync.Mutex
		sent    uint64
		errs    uint64
		wg      sync.WaitGroup
		tokens  = make(chan struct{}, concurrency)
		shifted = false
	)

	deadline := start.Add(cfg.Duration)
	shiftAt := start.Add(time.Duration(shiftFrac * float64(cfg.Duration)))
	for {
		now := time.Now()
		if now.After(deadline) || ctx.Err() != nil {
			break
		}
		if !shifted && now.After(shiftAt) {
			shifted = true
			for i, t := range cfg.Tenants {
				if t.Shift <= 0 {
					continue
				}
				s := t.ZipfS
				if s == 0 {
					s = 0.99
				}
				n := uint64(float64(t.Keys) * t.Shift)
				if n < 1 {
					n = 1
				}
				g, err := workload.NewGenerator(rand.New(rand.NewSource(cfg.Seed+int64(i)+1001)), n,
					workload.WithZipfS(s))
				if err != nil {
					return nil, fmt.Errorf("tenant %s shift: %w", t.Name, err)
				}
				mu.Lock()
				gens[i] = g
				mu.Unlock()
			}
		}

		mu.Lock()
		// Weighted tenant draw, then the whole multi-get from its keyspace.
		pick := rng.Float64() * totalShare
		ti := 0
		for i, t := range cfg.Tenants {
			if pick < t.Share {
				ti = i
				break
			}
			pick -= t.Share
			ti = i
		}
		batch := gens[ti].NextMulti(cfg.KVPerRequest)
		gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		mu.Unlock()
		keys := make([]string, len(batch))
		prefix := cfg.Tenants[ti].Name + "/"
		for i, r := range batch {
			keys[i] = prefix + r.Key
		}

		tokens <- struct{}{}
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			defer func() { <-tokens }()
			rt, hits, misses, err := h.Handle(keys)
			mu.Lock()
			defer mu.Unlock()
			sent++
			if err != nil {
				errs++
				return
			}
			o := &outcomes[ti]
			o.Requests++
			o.Hits += uint64(hits)
			o.Misses += uint64(misses)
			recorder.RecordRequest(time.Now(), rt, hits, misses)
		}(ti)
		time.Sleep(gap)
	}
	wg.Wait()

	elapsed := time.Since(start)
	report := &TenantReport{
		Sent:    sent,
		Errors:  errs,
		Series:  recorder.Series(),
		Tenants: outcomes,
	}
	if elapsed > 0 {
		report.AchievedRate = float64(sent) / elapsed.Seconds()
	}
	return report, nil
}
