package loadgen

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

func validConfig() Config {
	return Config{
		Duration:     300 * time.Millisecond,
		PeakRate:     500,
		KVPerRequest: 5,
		Keys:         1000,
		Seed:         1,
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero duration", mutate: func(c *Config) { c.Duration = 0 }},
		{name: "zero rate", mutate: func(c *Config) { c.PeakRate = 0 }},
		{name: "zero kv", mutate: func(c *Config) { c.KVPerRequest = 0 }},
		{name: "zero keys", mutate: func(c *Config) { c.Keys = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validConfig()
			tt.mutate(&cfg)
			_, err := Run(context.Background(), cfg, HandlerFunc(func([]string) (time.Duration, int, int, error) {
				return time.Millisecond, 1, 0, nil
			}))
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestNilHandler(t *testing.T) {
	if _, err := Run(context.Background(), validConfig(), nil); !errors.Is(err, ErrBadConfig) {
		t.Fatal("want ErrBadConfig for nil handler")
	}
}

func TestRunDrivesHandler(t *testing.T) {
	var count atomic.Uint64
	var keyLens sync.Map
	h := HandlerFunc(func(keys []string) (time.Duration, int, int, error) {
		count.Add(1)
		keyLens.Store(len(keys), true)
		return 2 * time.Millisecond, len(keys) - 1, 1, nil
	})
	report, err := Run(context.Background(), validConfig(), h)
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() == 0 || report.Sent != count.Load() {
		t.Fatalf("sent = %d, handled = %d", report.Sent, count.Load())
	}
	if _, ok := keyLens.Load(5); !ok {
		t.Fatal("handler did not receive 5-key batches")
	}
	if report.Errors != 0 {
		t.Fatalf("errors = %d", report.Errors)
	}
	if len(report.Series) == 0 {
		t.Fatal("no series recorded")
	}
	if report.AchievedRate <= 0 {
		t.Fatal("achieved rate not reported")
	}
}

func TestRunCountsErrors(t *testing.T) {
	h := HandlerFunc(func([]string) (time.Duration, int, int, error) {
		return 0, 0, 0, errors.New("boom")
	})
	report, err := Run(context.Background(), validConfig(), h)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors == 0 || report.Errors != report.Sent {
		t.Fatalf("errors = %d of %d", report.Errors, report.Sent)
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Uint64
	h := HandlerFunc(func([]string) (time.Duration, int, int, error) {
		if count.Add(1) == 3 {
			cancel()
		}
		return time.Millisecond, 1, 0, nil
	})
	cfg := validConfig()
	cfg.Duration = 10 * time.Second // would run far longer without cancel
	start := time.Now()
	if _, err := Run(ctx, cfg, h); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not stop the run promptly")
	}
}

func TestRunWithTrace(t *testing.T) {
	tr := trace.MustGenerate(trace.SYS, trace.Options{})
	cfg := validConfig()
	cfg.Trace = tr
	cfg.Duration = 200 * time.Millisecond
	var count atomic.Uint64
	h := HandlerFunc(func([]string) (time.Duration, int, int, error) {
		count.Add(1)
		return time.Millisecond, 1, 0, nil
	})
	report, err := Run(context.Background(), cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	if report.Sent == 0 {
		t.Fatal("trace-modulated run sent nothing")
	}
}

func TestRunApproximatesRate(t *testing.T) {
	cfg := validConfig()
	cfg.Duration = 500 * time.Millisecond
	cfg.PeakRate = 200
	h := HandlerFunc(func([]string) (time.Duration, int, int, error) {
		return time.Microsecond, 1, 0, nil
	})
	report, err := Run(context.Background(), cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	// Open loop at 200/s for 0.5s → ≈100 requests; allow wide slack for
	// scheduler jitter on loaded CI machines.
	if report.Sent < 30 || report.Sent > 300 {
		t.Fatalf("sent %d requests, want ≈100", report.Sent)
	}
}
