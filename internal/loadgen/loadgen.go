// Package loadgen is the httperf analog of the paper's testbed (Section
// V-A): an open-loop load generator firing web requests at a handler with
// exponential inter-arrival times whose mean rate follows a demand trace
// in real time. It also measures the achieved request rate, the signal
// the AutoScaler reads at the load balancer (Section III-B).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ErrBadConfig reports invalid construction parameters.
var ErrBadConfig = errors.New("loadgen: invalid configuration")

// Handler consumes one web request's keys; loadgen measures its outcome.
type Handler interface {
	Handle(keys []string) (RT time.Duration, hits, misses int, err error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(keys []string) (time.Duration, int, int, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(keys []string) (time.Duration, int, int, error) {
	return f(keys)
}

// Config parameterizes a load generation run.
type Config struct {
	// Trace modulates the request rate; nil means constant PeakRate.
	Trace *trace.Trace
	// Duration bounds the run (and compresses the trace to it).
	Duration time.Duration
	// PeakRate is the request rate (req/s) at normalized demand 1.0.
	PeakRate float64
	// KVPerRequest is the multi-get size.
	KVPerRequest int
	// Keys is the keyspace size.
	Keys uint64
	// ZipfS is the popularity skew (default 0.99).
	ZipfS float64
	// Concurrency bounds in-flight requests (default 64).
	Concurrency int
	// Seed drives randomness.
	Seed int64
}

func (c Config) validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("%w: Duration %v", ErrBadConfig, c.Duration)
	case c.PeakRate <= 0:
		return fmt.Errorf("%w: PeakRate %v", ErrBadConfig, c.PeakRate)
	case c.KVPerRequest < 1:
		return fmt.Errorf("%w: KVPerRequest %d", ErrBadConfig, c.KVPerRequest)
	case c.Keys == 0:
		return fmt.Errorf("%w: zero keyspace", ErrBadConfig)
	}
	return nil
}

// Report is the outcome of a run.
type Report struct {
	// Sent and Errors count issued requests and handler failures.
	Sent   uint64
	Errors uint64
	// Series is the per-second hit rate and P95 of completed requests.
	Series []metrics.SecondStat
	// AchievedRate is Sent / Duration.
	AchievedRate float64
}

// Run drives the handler until the duration elapses or ctx is cancelled.
func Run(ctx context.Context, cfg Config, h Handler) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if h == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrBadConfig)
	}
	zipfS := cfg.ZipfS
	if zipfS == 0 {
		zipfS = 0.99
	}
	concurrency := cfg.Concurrency
	if concurrency <= 0 {
		concurrency = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen, err := workload.NewGenerator(rng, cfg.Keys, workload.WithZipfS(zipfS))
	if err != nil {
		return nil, err
	}

	start := time.Now()
	recorder := metrics.NewRecorder(start)
	var (
		mu     sync.Mutex // guards recorder and counters
		sent   uint64
		errs   uint64
		wg     sync.WaitGroup
		tokens = make(chan struct{}, concurrency)
	)

	deadline := start.Add(cfg.Duration)
	for {
		now := time.Now()
		if now.After(deadline) {
			break
		}
		if err := ctx.Err(); err != nil {
			break
		}
		rate := cfg.PeakRate
		if cfg.Trace != nil {
			frac := float64(now.Sub(start)) / float64(cfg.Duration)
			at := time.Duration(frac * float64(cfg.Trace.Duration()))
			rate = cfg.Trace.RateAt(at) * cfg.PeakRate
			if rate < 1 {
				rate = 1
			}
		}
		mu.Lock()
		batch := gen.NextMulti(cfg.KVPerRequest)
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		mu.Unlock()
		keys := make([]string, len(batch))
		for i, r := range batch {
			keys[i] = r.Key
		}

		tokens <- struct{}{} // open-loop with a bounded in-flight cap
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-tokens }()
			rt, hits, misses, err := h.Handle(keys)
			mu.Lock()
			defer mu.Unlock()
			sent++
			if err != nil {
				errs++
				return
			}
			recorder.RecordRequest(time.Now(), rt, hits, misses)
		}()
		time.Sleep(gap)
	}
	wg.Wait()

	elapsed := time.Since(start)
	report := &Report{
		Sent:   sent,
		Errors: errs,
		Series: recorder.Series(),
	}
	if elapsed > 0 {
		report.AchievedRate = float64(sent) / elapsed.Seconds()
	}
	return report, nil
}
