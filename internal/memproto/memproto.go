// Package memproto implements the Memcached ASCII protocol subset the
// ElMem testbed uses (Section II-A): get (multi-key), set, delete, touch,
// stats, flush_all, version, and quit. It provides a parser and response
// writers shared by the node server and the client library.
//
// The parser is built for the serving hot path: it performs zero heap
// allocations per request in steady state. One Request struct is reused
// across Next calls, keys are byte slices into parser-owned buffers,
// values land in a scratch buffer that grows once per connection, and
// field splitting and number parsing are hand-rolled so no intermediate
// strings are materialized. See DESIGN.md, "Data-path hot path".
package memproto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Command identifies a parsed request type.
type Command int

// The supported commands.
const (
	CmdGet  Command = iota + 1
	CmdGets         // get returning CAS tokens
	CmdSet
	CmdAdd
	CmdReplace
	CmdAppend
	CmdPrepend
	CmdCas
	CmdIncr
	CmdDecr
	CmdDelete
	CmdTouch
	CmdStats
	CmdFlushAll
	CmdVersion
	CmdQuit
	CmdHotKeys   // hot-key table poll
	CmdHKPut     // home→replica value push (storage-shaped)
	CmdHKDel     // home→replica invalidation
	CmdHKTouch   // home→replica TTL refresh
	CmdLeaseGet  // lease get: a miss hands out a fill token
	CmdLeaseSet  // lease set: a fill accepted only with a valid token
	CmdNamespace // bind the connection to a named tenant
)

// Protocol limits mirroring memcached's.
const (
	// MaxKeyLen is memcached's 250-byte key limit.
	MaxKeyLen = 250
	// MaxValueLen bounds a single value (1 MiB, the page size).
	MaxValueLen = 1 << 20
	// maxLineLen bounds a request line (keys in a multi-get).
	maxLineLen = 64 << 10
	// maxSkipBytes bounds how much of an oversized value body the parser
	// will read and discard to keep the stream in sync; beyond it the
	// connection is declared desynchronized.
	maxSkipBytes = 8 << 20
)

var (
	// ErrProtocol is a malformed request (client error).
	ErrProtocol = errors.New("memproto: protocol error")
	// ErrTooLarge is an oversized key or value.
	ErrTooLarge = errors.New("memproto: key or value too large")
)

// desyncError marks a protocol error after which the parser no longer
// knows where the next request begins, so the connection must close.
type desyncError struct{ err error }

func (e *desyncError) Error() string { return e.err.Error() }
func (e *desyncError) Unwrap() error { return e.err }

func desync(err error) error { return &desyncError{err: err} }

// IsRecoverable reports whether the connection can keep serving after a
// Next error: the parser consumed the offending line (and, for storage
// commands with a parseable byte count, the data block) and is positioned
// at the start of the next request, so the server can answer CLIENT_ERROR
// and resync — real memcached's behavior. I/O errors and desynchronized
// streams are not recoverable.
func IsRecoverable(err error) bool {
	if err == nil {
		return true
	}
	var d *desyncError
	if errors.As(err, &d) {
		return false
	}
	return errors.Is(err, ErrProtocol) || errors.Is(err, ErrTooLarge)
}

// Request is one parsed client request. The Parser returns the same
// Request on every Next call: all fields, including the key and value
// byte slices, are only valid until the next Next call.
type Request struct {
	// Command is the request type.
	Command Command
	// Keys holds the key (set/delete/touch) or keys (get). The slices
	// alias parser-owned buffers; copy them to retain past the request.
	Keys [][]byte
	// Value is the payload of a set, aliasing the parser's scratch buffer.
	Value []byte
	// Flags and Exptime echo the set/touch parameters (stored opaquely).
	Flags   uint32
	Exptime int64
	// CAS is the compare-and-swap token of a cas request.
	CAS uint64
	// Delta is the incr/decr amount.
	Delta uint64
	// NoReply suppresses the response when true.
	NoReply bool
}

// Parser reads requests from a stream. It is not safe for concurrent use;
// each connection owns one Parser (servers pool them via Reset).
type Parser struct {
	r *bufio.Reader

	req    Request  // reused across Next calls
	fields [][]byte // field-split scratch
	line   []byte   // spillover scratch for lines longer than the read buffer
	key    []byte   // storage-command key scratch (must survive the body read)
	val    []byte   // value scratch: grows to the largest body seen
}

// NewParser wraps a reader.
func NewParser(r io.Reader) *Parser {
	return &Parser{r: bufio.NewReaderSize(r, 16<<10)}
}

// Reset repoints the parser at a new stream, keeping its internal buffers.
// Servers use it to pool per-connection parser state.
func (p *Parser) Reset(r io.Reader) {
	p.r.Reset(r)
}

// Buffered reports how many request bytes are already buffered. The
// server's flush-coalescing rule flushes responses only when this is zero,
// i.e. when no further pipelined requests are queued.
func (p *Parser) Buffered() int { return p.r.Buffered() }

// Next reads and parses one request. io.EOF signals a clean close. The
// returned Request is reused: it and its byte slices are invalidated by
// the following Next call. Errors for which IsRecoverable returns true
// leave the stream positioned at the next request line.
func (p *Parser) Next() (*Request, error) {
	line, err := p.readLine()
	if err != nil {
		return nil, err
	}
	p.fields = splitFields(line, p.fields[:0])
	if len(p.fields) == 0 {
		return nil, fmt.Errorf("%w: empty command line", ErrProtocol)
	}
	req := &p.req
	*req = Request{Keys: req.Keys[:0]}
	args := p.fields[1:]
	switch string(p.fields[0]) {
	case "get":
		return p.parseGet(args, CmdGet)
	case "gets":
		return p.parseGet(args, CmdGets)
	case "set":
		return p.parseStore(args, CmdSet)
	case "add":
		return p.parseStore(args, CmdAdd)
	case "replace":
		return p.parseStore(args, CmdReplace)
	case "append":
		return p.parseStore(args, CmdAppend)
	case "prepend":
		return p.parseStore(args, CmdPrepend)
	case "cas":
		return p.parseStore(args, CmdCas)
	case "incr":
		return p.parseArith(args, CmdIncr)
	case "decr":
		return p.parseArith(args, CmdDecr)
	case "delete":
		return p.parseDelete(args, CmdDelete)
	case "touch":
		return p.parseTouch(args, CmdTouch)
	case "hotkeys":
		req.Command = CmdHotKeys
		return req, nil
	case "hkput":
		return p.parseStore(args, CmdHKPut)
	case "hkdel":
		return p.parseDelete(args, CmdHKDel)
	case "hktouch":
		return p.parseTouch(args, CmdHKTouch)
	case "lget":
		if len(args) != 1 {
			return nil, fmt.Errorf("%w: lget requires exactly one key", ErrProtocol)
		}
		return p.parseGet(args, CmdLeaseGet)
	case "lset":
		return p.parseStore(args, CmdLeaseSet)
	case "namespace":
		return p.parseNamespace(args)
	case "stats":
		req.Command = CmdStats
		return req, nil
	case "flush_all":
		req.Command = CmdFlushAll
		req.NoReply = hasNoReply(args)
		return req, nil
	case "version":
		req.Command = CmdVersion
		return req, nil
	case "quit":
		req.Command = CmdQuit
		return req, nil
	default:
		return nil, fmt.Errorf("%w: unknown command %q", ErrProtocol, p.fields[0])
	}
}

// readLine returns one request line without its terminator. The returned
// slice aliases the read buffer (or p.line for oversized lines) and is
// valid until the next read. An over-limit line is consumed through its
// newline so the error is recoverable.
func (p *Parser) readLine() ([]byte, error) {
	line, err := p.r.ReadSlice('\n')
	if err == nil {
		return trimCRLF(line), nil
	}
	switch {
	case err == io.EOF:
		if len(line) == 0 {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	case err != bufio.ErrBufferFull:
		return nil, err
	}
	// Line longer than the read buffer: spill into the scratch.
	p.line = append(p.line[:0], line...)
	for {
		if len(p.line) > maxLineLen {
			if err := p.drainLine(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrTooLarge, maxLineLen)
		}
		line, err = p.r.ReadSlice('\n')
		p.line = append(p.line, line...)
		switch {
		case err == nil:
			return trimCRLF(p.line), nil
		case err == io.EOF:
			return nil, io.ErrUnexpectedEOF
		case err != bufio.ErrBufferFull:
			return nil, err
		}
	}
}

// drainLine consumes the rest of the current line, discarding it.
func (p *Parser) drainLine() error {
	for {
		_, err := p.r.ReadSlice('\n')
		switch {
		case err == nil:
			return nil
		case err == bufio.ErrBufferFull:
			continue
		case err == io.EOF:
			return io.ErrUnexpectedEOF
		default:
			return err
		}
	}
}

func trimCRLF(line []byte) []byte {
	line = line[:len(line)-1] // '\n'
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// splitFields splits on runs of spaces and tabs without allocating; out is
// the caller's reusable backing slice.
func splitFields(line []byte, out [][]byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			out = append(out, line[start:i])
		}
	}
	return out
}

func (p *Parser) parseGet(args [][]byte, cmd Command) (*Request, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("%w: get requires at least one key", ErrProtocol)
	}
	for _, a := range args {
		if err := validateKey(a); err != nil {
			return nil, err
		}
		p.req.Keys = append(p.req.Keys, a)
	}
	p.req.Command = cmd
	return &p.req, nil
}

// parseStore handles the storage family:
//
//	set|add|replace|append|prepend <key> <flags> <exptime> <bytes> [noreply]
//	cas <key> <flags> <exptime> <bytes> <casid> [noreply]
//	lset <key> <flags> <exptime> <bytes> <token> [noreply]
//
// Every line field is validated before the data block is read, so a bad
// command line with a parseable byte count can skip its body and recover.
func (p *Parser) parseStore(args [][]byte, cmd Command) (*Request, error) {
	fixed := 4 // key flags exptime bytes
	if cmd == CmdCas || cmd == CmdLeaseSet {
		fixed = 5 // + casid (cas) or lease token (lset)
	}
	if len(args) < fixed || len(args) > fixed+1 {
		return nil, fmt.Errorf("%w: storage command requires %d or %d arguments", ErrProtocol, fixed, fixed+1)
	}
	// The byte count first: knowing it lets every later error skip the
	// data block and keep the stream in sync.
	size64, sizeOK := parseUint64(args[3])
	if !sizeOK {
		// No trustworthy body length: the data block, if any, will be
		// misread as command lines and rejected one by one — exactly how
		// real memcached resyncs after a bad byte count.
		return nil, fmt.Errorf("%w: bad byte count", ErrProtocol)
	}
	if size64 > maxSkipBytes {
		// Parseable but beyond what the parser will read-and-discard to
		// stay aligned; the body, if present, resyncs like a bad count.
		return nil, fmt.Errorf("%w: value of %d bytes", ErrTooLarge, size64)
	}
	size := int(size64)
	fail := func(err error) (*Request, error) {
		if derr := p.discardBody(size); derr != nil {
			// The body could not be skipped (stream truncated or broken):
			// keep the original cause but mark the stream desynchronized.
			return nil, desync(err)
		}
		return nil, err
	}
	if size > MaxValueLen {
		return fail(fmt.Errorf("%w: value of %d bytes", ErrTooLarge, size))
	}
	if err := validateKey(args[0]); err != nil {
		return fail(err)
	}
	flags, ok := parseUint32(args[1])
	if !ok {
		return fail(fmt.Errorf("%w: bad flags", ErrProtocol))
	}
	exptime, ok := parseInt64(args[2])
	if !ok {
		return fail(fmt.Errorf("%w: bad exptime", ErrProtocol))
	}
	var casID uint64
	if cmd == CmdCas || cmd == CmdLeaseSet {
		casID, ok = parseUint64(args[4])
		if !ok {
			return fail(fmt.Errorf("%w: bad cas token", ErrProtocol))
		}
	}
	noreply := false
	if len(args) == fixed+1 {
		if string(args[fixed]) != "noreply" {
			return fail(fmt.Errorf("%w: unexpected token %q", ErrProtocol, args[fixed]))
		}
		noreply = true
	}

	// The line is fully parsed. Copy the key out of the line buffer —
	// reading the body below may refill the buffer under it.
	p.key = append(p.key[:0], args[0]...)

	// Read value and trailing \r\n in one ReadFull into the scratch.
	need := size + 2
	if cap(p.val) < need {
		p.val = make([]byte, need)
	}
	body := p.val[:need]
	if _, err := io.ReadFull(p.r, body); err != nil {
		return nil, desync(fmt.Errorf("%w: short value read: %v", ErrProtocol, err))
	}
	if body[size] != '\r' || body[size+1] != '\n' {
		// The stream consumed exactly size+2 bytes; if the client's byte
		// count was right this is the next line boundary, so let the
		// connection try to continue — memcached's "bad data chunk" path.
		return nil, fmt.Errorf("%w: bad value terminator", ErrProtocol)
	}

	req := &p.req
	req.Command = cmd
	req.Keys = append(req.Keys, p.key)
	req.Value = body[:size]
	req.Flags = flags
	req.Exptime = exptime
	req.CAS = casID
	req.NoReply = noreply
	return req, nil
}

// discardBody skips a data block plus its \r\n terminator.
func (p *Parser) discardBody(size int) error {
	_, err := p.r.Discard(size + 2)
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// parseArith handles: incr|decr <key> <delta> [noreply]
func (p *Parser) parseArith(args [][]byte, cmd Command) (*Request, error) {
	if len(args) < 2 || len(args) > 3 {
		return nil, fmt.Errorf("%w: incr/decr requires key and delta", ErrProtocol)
	}
	if err := validateKey(args[0]); err != nil {
		return nil, err
	}
	delta, ok := parseUint64(args[1])
	if !ok {
		return nil, fmt.Errorf("%w: bad delta", ErrProtocol)
	}
	req := &p.req
	req.Command = cmd
	req.Keys = append(req.Keys, args[0])
	req.Delta = delta
	req.NoReply = hasNoReply(args[2:])
	return req, nil
}

func (p *Parser) parseDelete(args [][]byte, cmd Command) (*Request, error) {
	if len(args) < 1 || len(args) > 2 {
		return nil, fmt.Errorf("%w: delete requires 1 key", ErrProtocol)
	}
	if err := validateKey(args[0]); err != nil {
		return nil, err
	}
	req := &p.req
	req.Command = cmd
	req.Keys = append(req.Keys, args[0])
	req.NoReply = hasNoReply(args[1:])
	return req, nil
}

func (p *Parser) parseTouch(args [][]byte, cmd Command) (*Request, error) {
	if len(args) < 2 || len(args) > 3 {
		return nil, fmt.Errorf("%w: touch requires key and exptime", ErrProtocol)
	}
	if err := validateKey(args[0]); err != nil {
		return nil, err
	}
	exptime, ok := parseInt64(args[1])
	if !ok {
		return nil, fmt.Errorf("%w: bad exptime", ErrProtocol)
	}
	req := &p.req
	req.Command = cmd
	req.Keys = append(req.Keys, args[0])
	req.Exptime = exptime
	req.NoReply = hasNoReply(args[2:])
	return req, nil
}

// parseNamespace handles: namespace <name> [noreply]
//
// The name is validated like a key (non-empty, ≤250 bytes, no control or
// space bytes); the server maps it to a registered tenant and binds the
// connection to it for subsequent requests.
func (p *Parser) parseNamespace(args [][]byte) (*Request, error) {
	if len(args) < 1 || len(args) > 2 {
		return nil, fmt.Errorf("%w: namespace requires 1 name", ErrProtocol)
	}
	if err := validateKey(args[0]); err != nil {
		return nil, err
	}
	req := &p.req
	req.Command = CmdNamespace
	req.Keys = append(req.Keys, args[0])
	req.NoReply = hasNoReply(args[1:])
	return req, nil
}

func hasNoReply(args [][]byte) bool {
	return len(args) == 1 && string(args[0]) == "noreply"
}

func validateKey(key []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("%w: empty key", ErrProtocol)
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("%w: key of %d bytes", ErrTooLarge, len(key))
	}
	for _, b := range key {
		if b <= ' ' || b == 0x7f {
			return fmt.Errorf("%w: key contains control or space byte", ErrProtocol)
		}
	}
	return nil
}

// Hand-rolled numeric parsers: strconv would force a string conversion
// (an allocation) per field on the hot path.

// parseUint64 parses a decimal uint64, rejecting empty input, non-digits,
// and overflow.
func parseUint64(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// parseUint32 is parseUint64 range-checked to 32 bits.
func parseUint32(b []byte) (uint32, bool) {
	n, ok := parseUint64(b)
	if !ok || n > 1<<32-1 {
		return 0, false
	}
	return uint32(n), true
}

// parseInt64 parses a decimal int64 with an optional leading minus.
func parseInt64(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	n, ok := parseUint64(b)
	if !ok || n > 1<<63-1 {
		return 0, false
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}
