// Package memproto implements the Memcached ASCII protocol subset the
// ElMem testbed uses (Section II-A): get (multi-key), set, delete, touch,
// stats, flush_all, version, and quit. It provides a parser and response
// writers shared by the node server and the client library.
package memproto

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Command identifies a parsed request type.
type Command int

// The supported commands.
const (
	CmdGet  Command = iota + 1
	CmdGets         // get returning CAS tokens
	CmdSet
	CmdAdd
	CmdReplace
	CmdAppend
	CmdPrepend
	CmdCas
	CmdIncr
	CmdDecr
	CmdDelete
	CmdTouch
	CmdStats
	CmdFlushAll
	CmdVersion
	CmdQuit
)

// Protocol limits mirroring memcached's.
const (
	// MaxKeyLen is memcached's 250-byte key limit.
	MaxKeyLen = 250
	// MaxValueLen bounds a single value (1 MiB, the page size).
	MaxValueLen = 1 << 20
	// maxLineLen bounds a request line (keys in a multi-get).
	maxLineLen = 64 << 10
)

var (
	// ErrProtocol is a malformed request (client error).
	ErrProtocol = errors.New("memproto: protocol error")
	// ErrTooLarge is an oversized key or value.
	ErrTooLarge = errors.New("memproto: key or value too large")
)

// Request is one parsed client request.
type Request struct {
	// Command is the request type.
	Command Command
	// Keys holds the key (set/delete/touch) or keys (get).
	Keys []string
	// Value is the payload of a set.
	Value []byte
	// Flags and Exptime echo the set/touch parameters (stored opaquely).
	Flags   uint32
	Exptime int64
	// CAS is the compare-and-swap token of a cas request.
	CAS uint64
	// Delta is the incr/decr amount.
	Delta uint64
	// NoReply suppresses the response when true.
	NoReply bool
}

// Parser reads requests from a stream.
type Parser struct {
	r *bufio.Reader
}

// NewParser wraps a reader.
func NewParser(r io.Reader) *Parser {
	return &Parser{r: bufio.NewReaderSize(r, 16<<10)}
}

// Next reads and parses one request. io.EOF signals a clean close.
func (p *Parser) Next() (*Request, error) {
	line, err := p.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, fmt.Errorf("%w: empty command line", ErrProtocol)
	}
	fields := bytes.Fields(line)
	cmd := string(fields[0])
	args := fields[1:]
	switch cmd {
	case "get":
		return p.parseGet(args, CmdGet)
	case "gets":
		return p.parseGet(args, CmdGets)
	case "set":
		return p.parseStore(args, CmdSet)
	case "add":
		return p.parseStore(args, CmdAdd)
	case "replace":
		return p.parseStore(args, CmdReplace)
	case "append":
		return p.parseStore(args, CmdAppend)
	case "prepend":
		return p.parseStore(args, CmdPrepend)
	case "cas":
		return p.parseCas(args)
	case "incr":
		return p.parseArith(args, CmdIncr)
	case "decr":
		return p.parseArith(args, CmdDecr)
	case "delete":
		return p.parseDelete(args)
	case "touch":
		return p.parseTouch(args)
	case "stats":
		return &Request{Command: CmdStats}, nil
	case "flush_all":
		req := &Request{Command: CmdFlushAll}
		req.NoReply = hasNoReply(args)
		return req, nil
	case "version":
		return &Request{Command: CmdVersion}, nil
	case "quit":
		return &Request{Command: CmdQuit}, nil
	default:
		return nil, fmt.Errorf("%w: unknown command %q", ErrProtocol, cmd)
	}
}

func (p *Parser) readLine() ([]byte, error) {
	line, err := p.r.ReadBytes('\n')
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return nil, io.EOF
		}
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if len(line) > maxLineLen {
		return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrTooLarge, maxLineLen)
	}
	// Strip \r\n (tolerate bare \n).
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

func (p *Parser) parseGet(args [][]byte, cmd Command) (*Request, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("%w: get requires at least one key", ErrProtocol)
	}
	req := &Request{Command: cmd, Keys: make([]string, 0, len(args))}
	for _, a := range args {
		if err := validateKey(a); err != nil {
			return nil, err
		}
		req.Keys = append(req.Keys, string(a))
	}
	return req, nil
}

// parseStore handles set/add/replace/append/prepend:
// <cmd> <key> <flags> <exptime> <bytes> [noreply]
func (p *Parser) parseStore(args [][]byte, cmd Command) (*Request, error) {
	if len(args) < 4 || len(args) > 5 {
		return nil, fmt.Errorf("%w: storage command requires 4 or 5 arguments", ErrProtocol)
	}
	if err := validateKey(args[0]); err != nil {
		return nil, err
	}
	flags, err := strconv.ParseUint(string(args[1]), 10, 32)
	if err != nil {
		return nil, fmt.Errorf("%w: bad flags: %v", ErrProtocol, err)
	}
	exptime, err := strconv.ParseInt(string(args[2]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad exptime: %v", ErrProtocol, err)
	}
	size, err := strconv.ParseInt(string(args[3]), 10, 64)
	if err != nil || size < 0 {
		return nil, fmt.Errorf("%w: bad byte count", ErrProtocol)
	}
	if size > MaxValueLen {
		return nil, fmt.Errorf("%w: value of %d bytes", ErrTooLarge, size)
	}
	req := &Request{
		Command: cmd,
		Keys:    []string{string(args[0])},
		Flags:   uint32(flags),
		Exptime: exptime,
	}
	if len(args) == 5 {
		if string(args[4]) != "noreply" {
			return nil, fmt.Errorf("%w: unexpected token %q", ErrProtocol, args[4])
		}
		req.NoReply = true
	}
	value := make([]byte, size)
	if _, err := io.ReadFull(p.r, value); err != nil {
		return nil, fmt.Errorf("%w: short value read: %v", ErrProtocol, err)
	}
	// Consume the trailing \r\n.
	tail := make([]byte, 2)
	if _, err := io.ReadFull(p.r, tail); err != nil {
		return nil, fmt.Errorf("%w: missing value terminator", ErrProtocol)
	}
	if tail[0] != '\r' || tail[1] != '\n' {
		return nil, fmt.Errorf("%w: bad value terminator", ErrProtocol)
	}
	req.Value = value
	return req, nil
}

// parseCas handles: cas <key> <flags> <exptime> <bytes> <casid> [noreply]
func (p *Parser) parseCas(args [][]byte) (*Request, error) {
	if len(args) < 5 || len(args) > 6 {
		return nil, fmt.Errorf("%w: cas requires 5 or 6 arguments", ErrProtocol)
	}
	noreply := false
	if len(args) == 6 {
		if string(args[5]) != "noreply" {
			return nil, fmt.Errorf("%w: unexpected token %q", ErrProtocol, args[5])
		}
		noreply = true
	}
	casID, err := strconv.ParseUint(string(args[4]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad cas token: %v", ErrProtocol, err)
	}
	req, err := p.parseStore(args[:4], CmdCas)
	if err != nil {
		return nil, err
	}
	req.CAS = casID
	req.NoReply = noreply
	return req, nil
}

// parseArith handles: incr|decr <key> <delta> [noreply]
func (p *Parser) parseArith(args [][]byte, cmd Command) (*Request, error) {
	if len(args) < 2 || len(args) > 3 {
		return nil, fmt.Errorf("%w: incr/decr requires key and delta", ErrProtocol)
	}
	if err := validateKey(args[0]); err != nil {
		return nil, err
	}
	delta, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad delta: %v", ErrProtocol, err)
	}
	req := &Request{Command: cmd, Keys: []string{string(args[0])}, Delta: delta}
	req.NoReply = hasNoReply(args[2:])
	return req, nil
}

func (p *Parser) parseDelete(args [][]byte) (*Request, error) {
	if len(args) < 1 || len(args) > 2 {
		return nil, fmt.Errorf("%w: delete requires 1 key", ErrProtocol)
	}
	if err := validateKey(args[0]); err != nil {
		return nil, err
	}
	req := &Request{Command: CmdDelete, Keys: []string{string(args[0])}}
	req.NoReply = hasNoReply(args[1:])
	return req, nil
}

func (p *Parser) parseTouch(args [][]byte) (*Request, error) {
	if len(args) < 2 || len(args) > 3 {
		return nil, fmt.Errorf("%w: touch requires key and exptime", ErrProtocol)
	}
	if err := validateKey(args[0]); err != nil {
		return nil, err
	}
	exptime, err := strconv.ParseInt(string(args[1]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad exptime: %v", ErrProtocol, err)
	}
	req := &Request{Command: CmdTouch, Keys: []string{string(args[0])}, Exptime: exptime}
	req.NoReply = hasNoReply(args[2:])
	return req, nil
}

func hasNoReply(args [][]byte) bool {
	return len(args) == 1 && string(args[0]) == "noreply"
}

func validateKey(key []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("%w: empty key", ErrProtocol)
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("%w: key of %d bytes", ErrTooLarge, len(key))
	}
	for _, b := range key {
		if b <= ' ' || b == 0x7f {
			return fmt.Errorf("%w: key contains control or space byte", ErrProtocol)
		}
	}
	return nil
}

// Response writers. All take a *bufio.Writer the caller flushes.

// WriteValue writes one VALUE block of a get response.
func WriteValue(w *bufio.Writer, key string, flags uint32, value []byte) error {
	if _, err := fmt.Fprintf(w, "VALUE %s %d %d\r\n", key, flags, len(value)); err != nil {
		return err
	}
	if _, err := w.Write(value); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

// WriteValueCAS writes one VALUE block of a gets response, including the
// item's CAS token.
func WriteValueCAS(w *bufio.Writer, key string, flags uint32, value []byte, casToken uint64) error {
	if _, err := fmt.Fprintf(w, "VALUE %s %d %d %d\r\n", key, flags, len(value), casToken); err != nil {
		return err
	}
	if _, err := w.Write(value); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

// WriteExists reports a cas conflict.
func WriteExists(w *bufio.Writer) error {
	_, err := w.WriteString("EXISTS\r\n")
	return err
}

// WriteNumber reports an incr/decr result.
func WriteNumber(w *bufio.Writer, v uint64) error {
	_, err := fmt.Fprintf(w, "%d\r\n", v)
	return err
}

// WriteEnd terminates a get or stats response.
func WriteEnd(w *bufio.Writer) error {
	_, err := w.WriteString("END\r\n")
	return err
}

// WriteStored acknowledges a set.
func WriteStored(w *bufio.Writer) error {
	_, err := w.WriteString("STORED\r\n")
	return err
}

// WriteNotStored reports a failed conditional store.
func WriteNotStored(w *bufio.Writer) error {
	_, err := w.WriteString("NOT_STORED\r\n")
	return err
}

// WriteDeleted acknowledges a delete.
func WriteDeleted(w *bufio.Writer) error {
	_, err := w.WriteString("DELETED\r\n")
	return err
}

// WriteNotFound reports a missing key for delete/touch.
func WriteNotFound(w *bufio.Writer) error {
	_, err := w.WriteString("NOT_FOUND\r\n")
	return err
}

// WriteTouched acknowledges a touch.
func WriteTouched(w *bufio.Writer) error {
	_, err := w.WriteString("TOUCHED\r\n")
	return err
}

// WriteOK acknowledges flush_all.
func WriteOK(w *bufio.Writer) error {
	_, err := w.WriteString("OK\r\n")
	return err
}

// WriteVersion reports the server version.
func WriteVersion(w *bufio.Writer, version string) error {
	_, err := fmt.Fprintf(w, "VERSION %s\r\n", version)
	return err
}

// WriteStat writes one STAT line.
func WriteStat(w *bufio.Writer, name, value string) error {
	_, err := fmt.Fprintf(w, "STAT %s %s\r\n", name, value)
	return err
}

// WriteClientError reports a client-caused failure.
func WriteClientError(w *bufio.Writer, msg string) error {
	_, err := fmt.Fprintf(w, "CLIENT_ERROR %s\r\n", msg)
	return err
}

// WriteServerError reports a server-side failure.
func WriteServerError(w *bufio.Writer, msg string) error {
	_, err := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", msg)
	return err
}

// WriteError reports an unknown command.
func WriteError(w *bufio.Writer) error {
	_, err := w.WriteString("ERROR\r\n")
	return err
}
