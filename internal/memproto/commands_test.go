package memproto

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseStorageFamily(t *testing.T) {
	tests := []struct {
		input string
		want  Command
	}{
		{input: "add k 0 0 2\r\nhi\r\n", want: CmdAdd},
		{input: "replace k 0 0 2\r\nhi\r\n", want: CmdReplace},
		{input: "append k 0 0 2\r\nhi\r\n", want: CmdAppend},
		{input: "prepend k 0 0 2\r\nhi\r\n", want: CmdPrepend},
	}
	for _, tt := range tests {
		req, err := parseOne(t, tt.input)
		if err != nil {
			t.Fatalf("parse(%q): %v", tt.input, err)
		}
		if req.Command != tt.want {
			t.Fatalf("parse(%q) = %v, want %v", tt.input, req.Command, tt.want)
		}
		if string(req.Value) != "hi" {
			t.Fatalf("value = %q", req.Value)
		}
	}
}

func TestParseCas(t *testing.T) {
	req, err := parseOne(t, "cas k 3 100 5 42\r\nhello\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdCas || req.CAS != 42 || req.Flags != 3 || req.Exptime != 100 {
		t.Fatalf("req = %+v", req)
	}
	if string(req.Value) != "hello" {
		t.Fatalf("value = %q", req.Value)
	}
	if req.NoReply {
		t.Fatal("unexpected noreply")
	}
}

func TestParseCasNoReply(t *testing.T) {
	req, err := parseOne(t, "cas k 0 0 2 7 noreply\r\nhi\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if !req.NoReply || req.CAS != 7 {
		t.Fatalf("req = %+v", req)
	}
}

func TestParseCasErrors(t *testing.T) {
	for _, input := range []string{
		"cas k 0 0 2\r\nhi\r\n",         // missing token
		"cas k 0 0 2 xyz\r\nhi\r\n",     // bad token
		"cas k 0 0 2 7 stray\r\nhi\r\n", // bad trailing token
	} {
		if _, err := parseOne(t, input); err == nil {
			t.Fatalf("parse(%q) succeeded, want error", input)
		}
	}
}

func TestParseIncrDecr(t *testing.T) {
	req, err := parseOne(t, "incr counter 5\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdIncr || req.Delta != 5 || string(req.Keys[0]) != "counter" {
		t.Fatalf("req = %+v", req)
	}
	req, err = parseOne(t, "decr counter 3 noreply\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdDecr || req.Delta != 3 || !req.NoReply {
		t.Fatalf("req = %+v", req)
	}
}

func TestParseIncrErrors(t *testing.T) {
	for _, input := range []string{
		"incr k\r\n",       // missing delta
		"incr k abc\r\n",   // non-numeric delta
		"incr k -5\r\n",    // negative delta
		"incr k 1 2 3\r\n", // too many args
	} {
		if _, err := parseOne(t, input); err == nil {
			t.Fatalf("parse(%q) succeeded, want error", input)
		}
	}
}

func TestWriteValueCASRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteValueCAS(w, "k", 7, []byte("vv"), 99); err != nil {
		t.Fatal(err)
	}
	if err := WriteEnd(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReplyReader(&buf).ReadValuesCAS()
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := got["k"]
	if !ok || string(entry.Value) != "vv" || entry.CAS != 99 {
		t.Fatalf("gets round trip = %+v", got)
	}
}

func TestReadValuesToleratesCASField(t *testing.T) {
	// A plain ReadValues must still parse 5-field VALUE lines.
	input := "VALUE k 0 2 55\r\nhi\r\nEND\r\n"
	got, err := NewReplyReader(strings.NewReader(input)).ReadValues()
	if err != nil {
		t.Fatal(err)
	}
	if string(got["k"]) != "hi" {
		t.Fatalf("values = %v", got)
	}
}

func TestParseValueLineErrors(t *testing.T) {
	for _, line := range []string{
		"VALUE k 0",          // too few fields
		"VALUE k 0 2 3 4",    // too many fields
		"NOTVALUE k 0 2",     // bad keyword
		"VALUE k x 2",        // bad flags
		"VALUE k 0 x",        // bad size
		"VALUE k 0 99999999", // oversized
		"VALUE k 0 2 x",      // bad cas
	} {
		if _, _, _, _, err := parseValueLine(line); err == nil {
			t.Fatalf("parseValueLine(%q) succeeded, want error", line)
		}
	}
}

func TestWriteExistsAndNumber(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteExists(w); err != nil {
		t.Fatal(err)
	}
	if err := WriteNumber(w, 123); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "EXISTS\r\n123\r\n" {
		t.Fatalf("wire = %q", got)
	}
}

// TestParserNeverPanicsOnRandomInput hammers the parser with arbitrary
// bytes: it must return errors, never panic, and never return a request
// with invariant-breaking fields.
func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	f := func(raw []byte) bool {
		p := NewParser(bytes.NewReader(raw))
		for i := 0; i < 16; i++ {
			req, err := p.Next()
			if err != nil {
				return true // any error is acceptable; panics are not
			}
			if req == nil {
				return false
			}
			for _, k := range req.Keys {
				if len(k) == 0 || len(k) > MaxKeyLen {
					return false
				}
			}
			if len(req.Value) > MaxValueLen {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanicsOnMutatedCommands mutates valid commands byte by
// byte — closer to the interesting boundary than pure noise.
func TestParserNeverPanicsOnMutatedCommands(t *testing.T) {
	seeds := []string{
		"get foo\r\n",
		"gets a b c\r\n",
		"set foo 1 2 5\r\nhello\r\n",
		"cas foo 0 0 2 42\r\nhi\r\n",
		"incr n 5\r\n",
		"delete foo noreply\r\n",
		"touch foo 100\r\n",
		"stats\r\n",
	}
	f := func(seedIdx uint8, pos uint16, b byte) bool {
		seed := []byte(seeds[int(seedIdx)%len(seeds)])
		mutated := make([]byte, len(seed))
		copy(mutated, seed)
		mutated[int(pos)%len(mutated)] = b
		p := NewParser(bytes.NewReader(mutated))
		for i := 0; i < 4; i++ {
			if _, err := p.Next(); err != nil {
				return true
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 3000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestParseNamespace(t *testing.T) {
	req, err := parseOne(t, "namespace tenant-a\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdNamespace {
		t.Fatalf("command = %v, want CmdNamespace", req.Command)
	}
	if len(req.Keys) != 1 || string(req.Keys[0]) != "tenant-a" {
		t.Fatalf("keys = %q", req.Keys)
	}
	if req.NoReply {
		t.Fatal("noreply set without the token")
	}

	req, err = parseOne(t, "namespace default noreply\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if !req.NoReply {
		t.Fatal("noreply token ignored")
	}
}

func TestParseNamespaceErrors(t *testing.T) {
	for _, input := range []string{
		"namespace\r\n",       // missing name
		"namespace a b c\r\n", // too many args
		"namespace " + strings.Repeat("x", 251) + "\r\n", // name over key limit
	} {
		if _, err := parseOne(t, input); err == nil {
			t.Errorf("parse(%q) succeeded, want error", input)
		}
	}
}
