package memproto

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzParser drives Next over arbitrary byte streams and checks the
// parser's safety contract:
//
//   - it never panics and never reads past the stream,
//   - it always makes progress (a stuck parser would spin a server
//     goroutine forever on a hostile connection),
//   - every successfully parsed request satisfies the protocol limits
//     (key length and character set, value size),
//   - recoverable errors really resync: a stream the parser finished
//     cleanly, extended with a sentinel request, parses the sentinel.
//
// Run `go test -fuzz FuzzParser ./internal/memproto` (or `make fuzz`) to
// explore beyond the checked-in corpus.

// countingReader counts bytes handed to the parser's bufio layer so the
// fuzz body can measure consumption as given − Buffered().
type countingReader struct {
	r *bytes.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// parseAll runs the parser over data until a clean EOF or an
// unrecoverable error, checking panic-freedom, progress, and per-request
// field validity. It returns the last parsed command and whether the
// stream ended in a clean io.EOF at a request boundary.
func parseAll(t *testing.T, data []byte) (last Command, cleanEOF bool) {
	t.Helper()
	cr := &countingReader{r: bytes.NewReader(data)}
	p := NewParser(cr)
	// A request consumes at least one byte, so a stream of len(data) bytes
	// yields at most len(data) results plus the terminal EOF. Hitting the
	// bound means the parser stopped consuming input.
	maxSteps := len(data) + 2
	prevConsumed := -1
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			t.Fatalf("parser made no progress after %d steps on %d bytes", steps, len(data))
		}
		req, err := p.Next()
		consumed := cr.n - p.Buffered()
		if consumed > len(data) {
			t.Fatalf("parser claims %d bytes consumed of a %d-byte stream", consumed, len(data))
		}
		if err == nil || IsRecoverable(err) {
			if consumed <= prevConsumed {
				t.Fatalf("no bytes consumed at step %d (consumed=%d, err=%v)", steps, consumed, err)
			}
		}
		prevConsumed = consumed
		switch {
		case err == nil:
			checkRequest(t, req)
			last = req.Command
		case errors.Is(err, io.EOF):
			return last, true
		case IsRecoverable(err):
			// The stream is positioned at the next request line; continue.
		default:
			// Desynchronized or truncated: the server would close here.
			return last, false
		}
	}
}

// checkRequest asserts the protocol limits on a successfully parsed
// request: these bound the allocations a hostile client can force.
func checkRequest(t *testing.T, req *Request) {
	t.Helper()
	for _, key := range req.Keys {
		if len(key) == 0 || len(key) > MaxKeyLen {
			t.Fatalf("parsed key of length %d (limit %d)", len(key), MaxKeyLen)
		}
		for _, b := range key {
			if b <= ' ' || b == 0x7f {
				t.Fatalf("parsed key with control/space byte %#x", b)
			}
		}
	}
	if len(req.Value) > MaxValueLen {
		t.Fatalf("parsed value of %d bytes (limit %d)", len(req.Value), MaxValueLen)
	}
	switch req.Command {
	case CmdGet, CmdGets:
		if len(req.Keys) == 0 {
			t.Fatal("get parsed with zero keys")
		}
	case CmdSet, CmdAdd, CmdReplace, CmdAppend, CmdPrepend, CmdCas,
		CmdIncr, CmdDecr, CmdDelete, CmdTouch:
		if len(req.Keys) != 1 {
			t.Fatalf("command %d parsed with %d keys, want 1", req.Command, len(req.Keys))
		}
	}
}

func FuzzParser(f *testing.F) {
	// Every command form the parser accepts, including noreply variants,
	// binary values, and multi-key gets.
	valid := []string{
		"get k\r\n",
		"get a b ccc\r\n",
		"gets k\r\n",
		"set k 7 0 5\r\nhello\r\n",
		"set k 0 3600 3 noreply\r\nabc\r\n",
		"set bin 0 0 4\r\n\x00\x01\xfe\xff\r\n",
		"add k 1 2 2\r\nhi\r\n",
		"replace k 0 0 0\r\n\r\n",
		"append k 0 0 1\r\nx\r\n",
		"prepend k 0 0 1\r\ny\r\n",
		"cas k 0 0 2 41\r\nok\r\n",
		"cas k 0 0 2 41 noreply\r\nok\r\n",
		"incr k 5\r\n",
		"decr k 1 noreply\r\n",
		"delete k\r\n",
		"delete k noreply\r\n",
		"touch k 300\r\n",
		"touch k 0 noreply\r\n",
		"stats\r\n",
		"flush_all\r\n",
		"flush_all noreply\r\n",
		"version\r\n",
		"quit\r\n",
	}
	// The recovery-contract corpus: malformed inputs a parser must survive
	// and resync past (see recovery_test.go).
	malformed := []string{
		"bogus nonsense\r\nget ok\r\n",
		"set k x 0 5\r\nhello\r\nget ok\r\n",
		"set " + string(bytes.Repeat([]byte("x"), MaxKeyLen+1)) + " 0 0 2\r\nhi\r\nget ok\r\n",
		"get " + string(bytes.Repeat([]byte("k "), 40<<10)) + "\r\nget ok\r\n",
		"set k 0 0 5\r\nhi",     // truncated body
		"get k",                 // truncated line
		"\r\n",                  // empty command
		"set k 0 0 -1\r\n",      // negative byte count
		"set k 0 0 1048577\r\n", // over MaxValueLen
		"incr k notanumber\r\n",
		"get\r\n", // no keys
		"set k 0 0 5\r\nhelloXX",
		"\x00\x01\x02\r\nversion\r\n",
	}
	for _, s := range valid {
		f.Add([]byte(s))
	}
	for _, s := range malformed {
		f.Add([]byte(s))
	}
	// Pipelined mixtures.
	f.Add([]byte("set a 0 0 2\r\nhi\r\nget a\r\ndelete a\r\nquit\r\n"))
	f.Add([]byte("bad\r\nset a 0 0 2\r\nhi\r\nbad again\r\nget a\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, clean := parseAll(t, data)
		if !clean {
			return
		}
		// Resync property: a stream that ended cleanly at a request
		// boundary, extended with a sentinel request, must parse the
		// sentinel — whatever recoverable errors the prefix produced.
		extended := append(append([]byte{}, data...), "version\r\n"...)
		last, cleanExt := parseAll(t, extended)
		if !cleanExt || last != CmdVersion {
			t.Fatalf("sentinel after clean prefix not parsed (last=%d clean=%v)", last, cleanExt)
		}
	})
}
