package memproto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func parseOne(t *testing.T, input string) (*Request, error) {
	t.Helper()
	return NewParser(strings.NewReader(input)).Next()
}

func TestParseGetSingle(t *testing.T) {
	req, err := parseOne(t, "get foo\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdGet || len(req.Keys) != 1 || string(req.Keys[0]) != "foo" {
		t.Fatalf("req = %+v", req)
	}
}

func TestParseGetMulti(t *testing.T) {
	req, err := parseOne(t, "get a b c\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Keys) != 3 || string(req.Keys[2]) != "c" {
		t.Fatalf("keys = %v", req.Keys)
	}
}

func TestParseGets(t *testing.T) {
	req, err := parseOne(t, "gets a\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdGets {
		t.Fatalf("gets parsed as %v, want CmdGets", req.Command)
	}
}

func TestParseSet(t *testing.T) {
	req, err := parseOne(t, "set foo 7 0 5\r\nhello\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdSet || string(req.Keys[0]) != "foo" {
		t.Fatalf("req = %+v", req)
	}
	if req.Flags != 7 || !bytes.Equal(req.Value, []byte("hello")) {
		t.Fatalf("flags/value = %d/%q", req.Flags, req.Value)
	}
	if req.NoReply {
		t.Fatal("unexpected noreply")
	}
}

func TestParseSetNoReply(t *testing.T) {
	req, err := parseOne(t, "set foo 0 0 2 noreply\r\nhi\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if !req.NoReply {
		t.Fatal("noreply not parsed")
	}
}

func TestParseSetBinaryValue(t *testing.T) {
	value := []byte{0, 1, 2, '\r', '\n', 255}
	var input bytes.Buffer
	input.WriteString("set bin 0 0 6\r\n")
	input.Write(value)
	input.WriteString("\r\n")
	req, err := NewParser(&input).Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(req.Value, value) {
		t.Fatalf("value = %v, want %v", req.Value, value)
	}
}

func TestParseSetErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{name: "too few args", input: "set foo 0 0\r\n"},
		{name: "bad flags", input: "set foo x 0 2\r\nhi\r\n"},
		{name: "bad exptime", input: "set foo 0 x 2\r\nhi\r\n"},
		{name: "bad size", input: "set foo 0 0 x\r\nhi\r\n"},
		{name: "negative size", input: "set foo 0 0 -1\r\nhi\r\n"},
		{name: "bad trailing token", input: "set foo 0 0 2 yolo\r\nhi\r\n"},
		{name: "missing terminator", input: "set foo 0 0 2\r\nhiXX"},
		{name: "truncated value", input: "set foo 0 0 10\r\nhi\r\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := parseOne(t, tt.input); err == nil {
				t.Fatalf("parse(%q) succeeded, want error", tt.input)
			}
		})
	}
}

func TestParseSetValueTooLarge(t *testing.T) {
	_, err := parseOne(t, "set foo 0 0 9999999\r\n")
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestParseDelete(t *testing.T) {
	req, err := parseOne(t, "delete foo\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdDelete || string(req.Keys[0]) != "foo" {
		t.Fatalf("req = %+v", req)
	}
	req, err = parseOne(t, "delete foo noreply\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if !req.NoReply {
		t.Fatal("noreply not parsed")
	}
}

func TestParseTouch(t *testing.T) {
	req, err := parseOne(t, "touch foo 100\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdTouch || req.Exptime != 100 {
		t.Fatalf("req = %+v", req)
	}
}

func TestParseAdminCommands(t *testing.T) {
	tests := []struct {
		input string
		want  Command
	}{
		{input: "stats\r\n", want: CmdStats},
		{input: "flush_all\r\n", want: CmdFlushAll},
		{input: "version\r\n", want: CmdVersion},
		{input: "quit\r\n", want: CmdQuit},
	}
	for _, tt := range tests {
		req, err := parseOne(t, tt.input)
		if err != nil {
			t.Fatalf("parse(%q): %v", tt.input, err)
		}
		if req.Command != tt.want {
			t.Fatalf("parse(%q) = %v, want %v", tt.input, req.Command, tt.want)
		}
	}
}

func TestParseUnknownCommand(t *testing.T) {
	if _, err := parseOne(t, "bogus\r\n"); !errors.Is(err, ErrProtocol) {
		t.Fatal("want ErrProtocol for unknown command")
	}
}

func TestParseBadKeys(t *testing.T) {
	long := strings.Repeat("x", MaxKeyLen+1)
	tests := []string{
		"get\r\n",
		"get " + long + "\r\n",
		"set " + long + " 0 0 1\r\nx\r\n",
	}
	for _, input := range tests {
		if _, err := parseOne(t, input); err == nil {
			t.Fatalf("parse(%q) succeeded, want error", input[:20])
		}
	}
}

func TestParseKeyControlBytes(t *testing.T) {
	if err := validateKey([]byte("ok-key")); err != nil {
		t.Fatal(err)
	}
	if err := validateKey([]byte{'a', 0x01}); err == nil {
		t.Fatal("control byte accepted")
	}
	if err := validateKey([]byte{}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestParseEOF(t *testing.T) {
	p := NewParser(strings.NewReader(""))
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	p = NewParser(strings.NewReader("get fo")) // cut mid-line
	if _, err := p.Next(); err == nil {
		t.Fatal("truncated line accepted")
	}
}

func TestParseBareLF(t *testing.T) {
	req, err := parseOne(t, "get foo\n")
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Keys[0]) != "foo" {
		t.Fatalf("keys = %v", req.Keys)
	}
}

func TestParsePipelined(t *testing.T) {
	p := NewParser(strings.NewReader("set a 0 0 1\r\nx\r\nget a\r\nquit\r\n"))
	want := []Command{CmdSet, CmdGet, CmdQuit}
	for i, w := range want {
		req, err := p.Next()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if req.Command != w {
			t.Fatalf("request %d = %v, want %v", i, req.Command, w)
		}
	}
}

// TestRoundTripSetProperty: formatting a set and parsing it back preserves
// key and value for arbitrary binary payloads.
func TestRoundTripSetProperty(t *testing.T) {
	f := func(raw []byte, flags uint32) bool {
		if len(raw) > MaxValueLen {
			raw = raw[:MaxValueLen]
		}
		wire := FormatSet("some-key", flags, 0, raw, false)
		req, err := NewParser(bytes.NewReader(wire)).Next()
		if err != nil {
			return false
		}
		return req.Command == CmdSet &&
			string(req.Keys[0]) == "some-key" &&
			req.Flags == flags &&
			bytes.Equal(req.Value, raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReplyReaderValues(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteValue(w, "a", 1, []byte("va")); err != nil {
		t.Fatal(err)
	}
	if err := WriteValue(w, "b", 2, []byte("vbb")); err != nil {
		t.Fatal(err)
	}
	if err := WriteEnd(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReplyReader(&buf).ReadValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got["a"]) != "va" || string(got["b"]) != "vbb" {
		t.Fatalf("values = %v", got)
	}
}

func TestReplyReaderEmptyValues(t *testing.T) {
	got, err := NewReplyReader(strings.NewReader("END\r\n")).ReadValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("values = %v, want empty", got)
	}
}

func TestReplyReaderServerError(t *testing.T) {
	_, err := NewReplyReader(strings.NewReader("SERVER_ERROR out of memory\r\n")).ReadValues()
	if !errors.Is(err, ErrServer) {
		t.Fatalf("err = %v, want ErrServer", err)
	}
	_, err = NewReplyReader(strings.NewReader("ERROR\r\n")).ReadSimple()
	if !errors.Is(err, ErrServer) {
		t.Fatalf("err = %v, want ErrServer", err)
	}
}

func TestReplyReaderSimple(t *testing.T) {
	line, err := NewReplyReader(strings.NewReader("STORED\r\n")).ReadSimple()
	if err != nil || line != "STORED" {
		t.Fatalf("ReadSimple = %q, %v", line, err)
	}
}

func TestReplyReaderStats(t *testing.T) {
	input := "STAT hits 10\r\nSTAT misses 2\r\nEND\r\n"
	got, err := NewReplyReader(strings.NewReader(input)).ReadStats()
	if err != nil {
		t.Fatal(err)
	}
	if got["hits"] != "10" || got["misses"] != "2" {
		t.Fatalf("stats = %v", got)
	}
}

func TestReplyReaderBadStat(t *testing.T) {
	if _, err := NewReplyReader(strings.NewReader("GARBAGE\r\nEND\r\n")).ReadStats(); err == nil {
		t.Fatal("bad stat line accepted")
	}
}

func TestFormatGetDelete(t *testing.T) {
	if got := string(FormatGet([]string{"a", "b"})); got != "get a b\r\n" {
		t.Fatalf("FormatGet = %q", got)
	}
	if got := string(FormatDelete("k", false)); got != "delete k\r\n" {
		t.Fatalf("FormatDelete = %q", got)
	}
	if got := string(FormatDelete("k", true)); got != "delete k noreply\r\n" {
		t.Fatalf("FormatDelete noreply = %q", got)
	}
}
