package memproto

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// The recovery contract: after a Next error for which IsRecoverable is
// true, the stream is positioned at the next request line, so a server can
// answer CLIENT_ERROR and keep serving — real memcached's resync behavior.

func TestRecoverAfterUnknownCommand(t *testing.T) {
	p := NewParser(strings.NewReader("bogus nonsense\r\nget ok\r\n"))
	_, err := p.Next()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
	if !IsRecoverable(err) {
		t.Fatalf("unknown command not recoverable: %v", err)
	}
	req, err := p.Next()
	if err != nil {
		t.Fatalf("next request after bad line: %v", err)
	}
	if req.Command != CmdGet || string(req.Keys[0]) != "ok" {
		t.Fatalf("req = %+v", req)
	}
}

func TestRecoverAfterBadStorageLineSwallowsBody(t *testing.T) {
	// The flags field is bad but the byte count parses, so the parser must
	// skip the 5-byte data block and realign on the following get.
	p := NewParser(strings.NewReader("set k x 0 5\r\nhello\r\nget ok\r\n"))
	_, err := p.Next()
	if !IsRecoverable(err) {
		t.Fatalf("bad storage line not recoverable: %v", err)
	}
	req, err := p.Next()
	if err != nil || req.Command != CmdGet || string(req.Keys[0]) != "ok" {
		t.Fatalf("req = %+v, err = %v", req, err)
	}
}

func TestRecoverAfterOversizedKey(t *testing.T) {
	long := strings.Repeat("x", MaxKeyLen+1)
	p := NewParser(strings.NewReader("set " + long + " 0 0 2\r\nhi\r\nget ok\r\n"))
	_, err := p.Next()
	if !errors.Is(err, ErrTooLarge) || !IsRecoverable(err) {
		t.Fatalf("err = %v, want recoverable ErrTooLarge", err)
	}
	req, err := p.Next()
	if err != nil || string(req.Keys[0]) != "ok" {
		t.Fatalf("req = %+v, err = %v", req, err)
	}
}

func TestRecoverAfterOversizedLine(t *testing.T) {
	// A request line longer than maxLineLen is consumed through its newline
	// so the connection can continue.
	long := "get " + strings.Repeat("k ", maxLineLen) + "\r\n"
	p := NewParser(strings.NewReader(long + "get ok\r\n"))
	_, err := p.Next()
	if !errors.Is(err, ErrTooLarge) || !IsRecoverable(err) {
		t.Fatalf("err = %v, want recoverable ErrTooLarge", err)
	}
	req, err := p.Next()
	if err != nil || string(req.Keys[0]) != "ok" {
		t.Fatalf("req = %+v, err = %v", req, err)
	}
}

func TestTruncatedBodyIsNotRecoverable(t *testing.T) {
	// The line is valid but the body never arrives: the stream is dead and
	// must not be resumed.
	p := NewParser(strings.NewReader("set k 0 0 5\r\nhi"))
	_, err := p.Next()
	if err == nil {
		t.Fatal("truncated body accepted")
	}
	if IsRecoverable(err) {
		t.Fatalf("truncated body reported recoverable: %v", err)
	}
}

func TestBadTerminatorKeepsStreamAligned(t *testing.T) {
	// Exactly size+2 bytes were consumed, so if the client's byte count was
	// honest the parser is on the next line boundary.
	p := NewParser(strings.NewReader("set k 0 0 2\r\nhiXXget ok\r\n"))
	_, err := p.Next()
	if !IsRecoverable(err) {
		t.Fatalf("bad terminator not recoverable: %v", err)
	}
	req, err := p.Next()
	if err != nil || string(req.Keys[0]) != "ok" {
		t.Fatalf("req = %+v, err = %v", req, err)
	}
}

func TestParserResetReusesBuffers(t *testing.T) {
	p := NewParser(strings.NewReader("set a 0 0 3\r\nabc\r\n"))
	req, err := p.Next()
	if err != nil || string(req.Value) != "abc" {
		t.Fatalf("first stream: %+v, %v", req, err)
	}
	p.Reset(strings.NewReader("get b\r\n"))
	req, err = p.Next()
	if err != nil || req.Command != CmdGet || string(req.Keys[0]) != "b" {
		t.Fatalf("after Reset: %+v, %v", req, err)
	}
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}
