package memproto

import (
	"bufio"
	"io"
	"strconv"
)

// ReplyWriter renders server responses into an owned buffered writer with
// zero heap allocations per reply: numbers are formatted with
// strconv.Append* into a scratch buffer that lives with the writer, so the
// serving hot path never touches fmt. One ReplyWriter serves one
// connection; servers pool them via Reset.
//
// Errors are sticky through the underlying bufio.Writer: intermediate
// write errors surface on the final write or on Flush, so methods only
// return the last write's error.
type ReplyWriter struct {
	w   *bufio.Writer
	num []byte // strconv.Append* scratch
}

// NewReplyWriter wraps w in a ReplyWriter with a 16 KiB buffer.
func NewReplyWriter(w io.Writer) *ReplyWriter {
	return &ReplyWriter{
		w:   bufio.NewWriterSize(w, 16<<10),
		num: make([]byte, 0, 64),
	}
}

// Reset repoints the writer at a new stream, keeping its buffers.
func (rw *ReplyWriter) Reset(w io.Writer) { rw.w.Reset(w) }

// Flush writes buffered responses to the connection. The server calls it
// only when the request parser has no more pipelined input buffered.
func (rw *ReplyWriter) Flush() error { return rw.w.Flush() }

// Buffered reports bytes pending in the write buffer.
func (rw *ReplyWriter) Buffered() int { return rw.w.Buffered() }

// writeUint formats a decimal into the scratch and emits it.
func (rw *ReplyWriter) writeUint(v uint64) {
	rw.num = strconv.AppendUint(rw.num[:0], v, 10)
	_, _ = rw.w.Write(rw.num)
}

// Value writes one VALUE block of a get response.
func (rw *ReplyWriter) Value(key []byte, flags uint32, value []byte) error {
	_, _ = rw.w.WriteString("VALUE ")
	_, _ = rw.w.Write(key)
	_ = rw.w.WriteByte(' ')
	rw.writeUint(uint64(flags))
	_ = rw.w.WriteByte(' ')
	rw.writeUint(uint64(len(value)))
	_, _ = rw.w.WriteString("\r\n")
	_, _ = rw.w.Write(value)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// ValueCAS writes one VALUE block of a gets response, including the CAS
// token.
func (rw *ReplyWriter) ValueCAS(key []byte, flags uint32, value []byte, casToken uint64) error {
	_, _ = rw.w.WriteString("VALUE ")
	_, _ = rw.w.Write(key)
	_ = rw.w.WriteByte(' ')
	rw.writeUint(uint64(flags))
	_ = rw.w.WriteByte(' ')
	rw.writeUint(uint64(len(value)))
	_ = rw.w.WriteByte(' ')
	rw.writeUint(casToken)
	_, _ = rw.w.WriteString("\r\n")
	_, _ = rw.w.Write(value)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// Lease writes the miss arm of an lget response: a fill token the client
// must present on its lset. Token 0 tells the client another fill is
// already outstanding. The caller terminates the response with End.
func (rw *ReplyWriter) Lease(token uint64) error {
	_, _ = rw.w.WriteString("LEASE ")
	rw.writeUint(token)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// Number reports an incr/decr result.
func (rw *ReplyWriter) Number(v uint64) error {
	rw.writeUint(v)
	_, err := rw.w.WriteString("\r\n")
	return err
}

func (rw *ReplyWriter) writeLine(s string) error {
	_, err := rw.w.WriteString(s)
	return err
}

// End terminates a get or stats response.
func (rw *ReplyWriter) End() error { return rw.writeLine("END\r\n") }

// Stored acknowledges a set.
func (rw *ReplyWriter) Stored() error { return rw.writeLine("STORED\r\n") }

// NotStored reports a failed conditional store.
func (rw *ReplyWriter) NotStored() error { return rw.writeLine("NOT_STORED\r\n") }

// Exists reports a cas conflict.
func (rw *ReplyWriter) Exists() error { return rw.writeLine("EXISTS\r\n") }

// Deleted acknowledges a delete.
func (rw *ReplyWriter) Deleted() error { return rw.writeLine("DELETED\r\n") }

// NotFound reports a missing key for delete/touch/cas.
func (rw *ReplyWriter) NotFound() error { return rw.writeLine("NOT_FOUND\r\n") }

// Touched acknowledges a touch.
func (rw *ReplyWriter) Touched() error { return rw.writeLine("TOUCHED\r\n") }

// OK acknowledges flush_all.
func (rw *ReplyWriter) OK() error { return rw.writeLine("OK\r\n") }

// Error reports an unknown command.
func (rw *ReplyWriter) Error() error { return rw.writeLine("ERROR\r\n") }

// Version reports the server version.
func (rw *ReplyWriter) Version(version string) error {
	_, _ = rw.w.WriteString("VERSION ")
	_, _ = rw.w.WriteString(version)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// Stat writes one STAT line.
func (rw *ReplyWriter) Stat(name, value string) error {
	_, _ = rw.w.WriteString("STAT ")
	_, _ = rw.w.WriteString(name)
	_ = rw.w.WriteByte(' ')
	_, _ = rw.w.WriteString(value)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// StatUint writes one STAT line with a numeric value, avoiding the
// strconv.Format allocation of Stat.
func (rw *ReplyWriter) StatUint(name string, v uint64) error {
	_, _ = rw.w.WriteString("STAT ")
	_, _ = rw.w.WriteString(name)
	_ = rw.w.WriteByte(' ')
	rw.writeUint(v)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// HotKeysHeader starts a hotkeys response with the table version. HK
// entries follow, terminated by End.
func (rw *ReplyWriter) HotKeysHeader(version uint64) error {
	_, _ = rw.w.WriteString("HOTKEYS ")
	rw.writeUint(version)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// HotKeyEntry writes one hot-key table row: the key and its serving set,
// home node first.
func (rw *ReplyWriter) HotKeyEntry(key string, nodes []string) error {
	_, _ = rw.w.WriteString("HK ")
	_, _ = rw.w.WriteString(key)
	for _, n := range nodes {
		_ = rw.w.WriteByte(' ')
		_, _ = rw.w.WriteString(n)
	}
	_, err := rw.w.WriteString("\r\n")
	return err
}

// ClientError reports a client-caused failure.
func (rw *ReplyWriter) ClientError(msg string) error {
	_, _ = rw.w.WriteString("CLIENT_ERROR ")
	_, _ = rw.w.WriteString(msg)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// ServerError reports a server-side failure.
func (rw *ReplyWriter) ServerError(msg string) error {
	_, _ = rw.w.WriteString("SERVER_ERROR ")
	_, _ = rw.w.WriteString(msg)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// Legacy free-function writers over a caller-owned bufio.Writer. The node
// server runs on ReplyWriter; these remain for tests and ad-hoc tools.
// They avoid fmt but may allocate for number formatting.

// WriteValue writes one VALUE block of a get response.
func WriteValue(w *bufio.Writer, key string, flags uint32, value []byte) error {
	var num [20]byte
	_, _ = w.WriteString("VALUE ")
	_, _ = w.WriteString(key)
	_ = w.WriteByte(' ')
	_, _ = w.Write(strconv.AppendUint(num[:0], uint64(flags), 10))
	_ = w.WriteByte(' ')
	_, _ = w.Write(strconv.AppendInt(num[:0], int64(len(value)), 10))
	_, _ = w.WriteString("\r\n")
	_, _ = w.Write(value)
	_, err := w.WriteString("\r\n")
	return err
}

// WriteValueCAS writes one VALUE block of a gets response, including the
// item's CAS token.
func WriteValueCAS(w *bufio.Writer, key string, flags uint32, value []byte, casToken uint64) error {
	var num [20]byte
	_, _ = w.WriteString("VALUE ")
	_, _ = w.WriteString(key)
	_ = w.WriteByte(' ')
	_, _ = w.Write(strconv.AppendUint(num[:0], uint64(flags), 10))
	_ = w.WriteByte(' ')
	_, _ = w.Write(strconv.AppendInt(num[:0], int64(len(value)), 10))
	_ = w.WriteByte(' ')
	_, _ = w.Write(strconv.AppendUint(num[:0], casToken, 10))
	_, _ = w.WriteString("\r\n")
	_, _ = w.Write(value)
	_, err := w.WriteString("\r\n")
	return err
}

// WriteExists reports a cas conflict.
func WriteExists(w *bufio.Writer) error {
	_, err := w.WriteString("EXISTS\r\n")
	return err
}

// WriteNumber reports an incr/decr result.
func WriteNumber(w *bufio.Writer, v uint64) error {
	var num [20]byte
	_, _ = w.Write(strconv.AppendUint(num[:0], v, 10))
	_, err := w.WriteString("\r\n")
	return err
}

// WriteEnd terminates a get or stats response.
func WriteEnd(w *bufio.Writer) error {
	_, err := w.WriteString("END\r\n")
	return err
}

// WriteStored acknowledges a set.
func WriteStored(w *bufio.Writer) error {
	_, err := w.WriteString("STORED\r\n")
	return err
}

// WriteNotStored reports a failed conditional store.
func WriteNotStored(w *bufio.Writer) error {
	_, err := w.WriteString("NOT_STORED\r\n")
	return err
}

// WriteDeleted acknowledges a delete.
func WriteDeleted(w *bufio.Writer) error {
	_, err := w.WriteString("DELETED\r\n")
	return err
}

// WriteNotFound reports a missing key for delete/touch.
func WriteNotFound(w *bufio.Writer) error {
	_, err := w.WriteString("NOT_FOUND\r\n")
	return err
}

// WriteTouched acknowledges a touch.
func WriteTouched(w *bufio.Writer) error {
	_, err := w.WriteString("TOUCHED\r\n")
	return err
}

// WriteOK acknowledges flush_all.
func WriteOK(w *bufio.Writer) error {
	_, err := w.WriteString("OK\r\n")
	return err
}

// WriteVersion reports the server version.
func WriteVersion(w *bufio.Writer, version string) error {
	_, _ = w.WriteString("VERSION ")
	_, _ = w.WriteString(version)
	_, err := w.WriteString("\r\n")
	return err
}

// WriteStat writes one STAT line.
func WriteStat(w *bufio.Writer, name, value string) error {
	_, _ = w.WriteString("STAT ")
	_, _ = w.WriteString(name)
	_ = w.WriteByte(' ')
	_, _ = w.WriteString(value)
	_, err := w.WriteString("\r\n")
	return err
}

// WriteClientError reports a client-caused failure.
func WriteClientError(w *bufio.Writer, msg string) error {
	_, _ = w.WriteString("CLIENT_ERROR ")
	_, _ = w.WriteString(msg)
	_, err := w.WriteString("\r\n")
	return err
}

// WriteServerError reports a server-side failure.
func WriteServerError(w *bufio.Writer, msg string) error {
	_, _ = w.WriteString("SERVER_ERROR ")
	_, _ = w.WriteString(msg)
	_, err := w.WriteString("\r\n")
	return err
}

// WriteError reports an unknown command.
func WriteError(w *bufio.Writer) error {
	_, err := w.WriteString("ERROR\r\n")
	return err
}
