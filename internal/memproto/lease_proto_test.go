package memproto

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestParseLeaseGet(t *testing.T) {
	p := NewParser(strings.NewReader("lget foo\r\nlget a b\r\nlget\r\n"))
	req, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdLeaseGet || len(req.Keys) != 1 || string(req.Keys[0]) != "foo" {
		t.Fatalf("lget parsed as %+v", req)
	}
	if _, err := p.Next(); err == nil || !IsRecoverable(err) {
		t.Fatalf("multi-key lget: err=%v", err)
	}
	if _, err := p.Next(); err == nil || !IsRecoverable(err) {
		t.Fatalf("bare lget: err=%v", err)
	}
}

func TestParseLeaseSet(t *testing.T) {
	p := NewParser(strings.NewReader("lset foo 7 0 5 42\r\nhello\r\nlset foo 7 0 5 nope\r\nhello\r\nget foo\r\n"))
	req, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdLeaseSet || string(req.Keys[0]) != "foo" ||
		req.Flags != 7 || req.CAS != 42 || string(req.Value) != "hello" {
		t.Fatalf("lset parsed as %+v", req)
	}
	// Bad token: recoverable, body skipped, stream resyncs on the get.
	if _, err := p.Next(); err == nil || !IsRecoverable(err) {
		t.Fatalf("bad token lset: err=%v", err)
	}
	req, err = p.Next()
	if err != nil || req.Command != CmdGet {
		t.Fatalf("resync after bad lset failed: req=%+v err=%v", req, err)
	}
}

func TestLeaseReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rw := NewReplyWriter(&buf)
	if err := rw.Lease(99); err != nil {
		t.Fatal(err)
	}
	if err := rw.End(); err != nil {
		t.Fatal(err)
	}
	if err := rw.Value([]byte("k"), 3, []byte("vvv")); err != nil {
		t.Fatal(err)
	}
	if err := rw.End(); err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}

	rr := NewReplyReader(&buf)
	val, flags, hit, token, err := rr.ReadLeaseGet()
	if err != nil || hit || token != 99 || val != nil {
		t.Fatalf("lease miss: val=%q flags=%d hit=%v token=%d err=%v", val, flags, hit, token, err)
	}
	val, flags, hit, token, err = rr.ReadLeaseGet()
	if err != nil || !hit || token != 0 || string(val) != "vvv" || flags != 3 {
		t.Fatalf("lease hit: val=%q flags=%d hit=%v token=%d err=%v", val, flags, hit, token, err)
	}
}

func TestLeaseReplyError(t *testing.T) {
	rr := NewReplyReader(strings.NewReader("SERVER_ERROR out of memory\r\n"))
	_, _, _, _, err := rr.ReadLeaseGet()
	if !errors.Is(err, ErrServer) {
		t.Fatalf("err=%v, want ErrServer", err)
	}
}

func TestFormatLease(t *testing.T) {
	if got := string(FormatLeaseGet("foo")); got != "lget foo\r\n" {
		t.Fatalf("FormatLeaseGet = %q", got)
	}
	got := string(FormatLeaseSet("foo", 7, 30, []byte("hi"), 42, false))
	if got != "lset foo 7 30 2 42\r\nhi\r\n" {
		t.Fatalf("FormatLeaseSet = %q", got)
	}
	got = string(FormatLeaseSet("foo", 0, 0, nil, 1, true))
	if got != "lset foo 0 0 0 1 noreply\r\n\r\n" {
		t.Fatalf("FormatLeaseSet noreply = %q", got)
	}
}
