package memproto

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrServer wraps SERVER_ERROR / CLIENT_ERROR / ERROR responses on the
// client side.
var ErrServer = errors.New("memproto: server reported error")

// ReplyReader parses server responses on the client side.
type ReplyReader struct {
	r   *bufio.Reader
	val []byte // value scratch reused by ReadValuesFunc
}

// NewReplyReader wraps a reader.
func NewReplyReader(r io.Reader) *ReplyReader {
	return &ReplyReader{r: bufio.NewReaderSize(r, 16<<10)}
}

// readLine reads one CRLF-terminated line without the terminator.
func (rr *ReplyReader) readLine() (string, error) {
	line, err := rr.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// errorFromLine converts an error response line to an error, or nil.
func errorFromLine(line string) error {
	switch {
	case line == "ERROR":
		return fmt.Errorf("%w: ERROR", ErrServer)
	case strings.HasPrefix(line, "CLIENT_ERROR "),
		strings.HasPrefix(line, "SERVER_ERROR "):
		return fmt.Errorf("%w: %s", ErrServer, line)
	}
	return nil
}

// ReadValuesFunc consumes a get/gets response — zero or more VALUE blocks
// followed by END — invoking fn for each block in arrival order. The value
// slice aliases a scratch buffer reused across blocks: copy it to retain
// it past fn's return. This is the allocation-light path the cluster
// client's positional multi-get matching runs on.
func (rr *ReplyReader) ReadValuesFunc(fn func(key string, flags uint32, value []byte, casToken uint64) error) error {
	for {
		line, err := rr.readLine()
		if err != nil {
			return err
		}
		if line == "END" {
			return nil
		}
		if err := errorFromLine(line); err != nil {
			return err
		}
		key, flags, size, casToken, err := parseValueLine(line)
		if err != nil {
			return err
		}
		// Read value and trailing \r\n in one ReadFull into the scratch.
		need := size + 2
		if cap(rr.val) < need {
			rr.val = make([]byte, need)
		}
		body := rr.val[:need]
		if _, err := io.ReadFull(rr.r, body); err != nil {
			return fmt.Errorf("%w: short value: %v", ErrProtocol, err)
		}
		if !bytes.Equal(body[size:], []byte("\r\n")) {
			return fmt.Errorf("%w: bad value terminator", ErrProtocol)
		}
		if err := fn(key, flags, body[:size], casToken); err != nil {
			return err
		}
	}
}

// ReadValues consumes a get response: zero or more VALUE blocks followed
// by END. Returns key → value.
func (rr *ReplyReader) ReadValues() (map[string][]byte, error) {
	out := make(map[string][]byte)
	err := rr.ReadValuesFunc(func(key string, _ uint32, value []byte, _ uint64) error {
		out[key] = append(make([]byte, 0, len(value)), value...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ValueCAS is one entry of a gets response.
type ValueCAS struct {
	// Value is the stored bytes.
	Value []byte
	// CAS is the item's compare-and-swap token.
	CAS uint64
}

// ReadValuesCAS consumes a gets response: VALUE blocks carrying CAS
// tokens, terminated by END.
func (rr *ReplyReader) ReadValuesCAS() (map[string]ValueCAS, error) {
	out := make(map[string]ValueCAS)
	err := rr.ReadValuesFunc(func(key string, _ uint32, value []byte, casToken uint64) error {
		out[key] = ValueCAS{
			Value: append(make([]byte, 0, len(value)), value...),
			CAS:   casToken,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// parseValueLine parses "VALUE <key> <flags> <bytes> [<cas>]".
func parseValueLine(line string) (key string, flags uint32, size int, casToken uint64, err error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields) > 5 || fields[0] != "VALUE" {
		return "", 0, 0, 0, fmt.Errorf("%w: bad VALUE line %q", ErrProtocol, line)
	}
	key = fields[1]
	f64, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return "", 0, 0, 0, fmt.Errorf("%w: bad flags in %q", ErrProtocol, line)
	}
	flags = uint32(f64)
	size, err = strconv.Atoi(fields[3])
	if err != nil || size < 0 || size > MaxValueLen {
		return "", 0, 0, 0, fmt.Errorf("%w: bad size in %q", ErrProtocol, line)
	}
	if len(fields) == 5 {
		casToken, err = strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return "", 0, 0, 0, fmt.Errorf("%w: bad cas in %q", ErrProtocol, line)
		}
	}
	return key, flags, size, casToken, nil
}

// ReadLeaseGet consumes an lget response: either one VALUE block followed
// by END (a hit), or a "LEASE <token>" line followed by END (a miss with
// a fill token; token 0 means another client already holds the lease —
// back off and retry). The returned value is a copy.
func (rr *ReplyReader) ReadLeaseGet() (value []byte, flags uint32, hit bool, token uint64, err error) {
	line, err := rr.readLine()
	if err != nil {
		return nil, 0, false, 0, err
	}
	if rest, ok := strings.CutPrefix(line, "LEASE "); ok {
		token, err = strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return nil, 0, false, 0, fmt.Errorf("%w: bad LEASE token %q", ErrProtocol, line)
		}
		end, err := rr.readLine()
		if err != nil {
			return nil, 0, false, 0, err
		}
		if end != "END" {
			return nil, 0, false, 0, fmt.Errorf("%w: expected END after LEASE, got %q", ErrProtocol, end)
		}
		return nil, 0, false, token, nil
	}
	if err := errorFromLine(line); err != nil {
		return nil, 0, false, 0, err
	}
	_, flags, size, _, err := parseValueLine(line)
	if err != nil {
		return nil, 0, false, 0, err
	}
	need := size + 2
	if cap(rr.val) < need {
		rr.val = make([]byte, need)
	}
	body := rr.val[:need]
	if _, err := io.ReadFull(rr.r, body); err != nil {
		return nil, 0, false, 0, fmt.Errorf("%w: short value: %v", ErrProtocol, err)
	}
	if !bytes.Equal(body[size:], []byte("\r\n")) {
		return nil, 0, false, 0, fmt.Errorf("%w: bad value terminator", ErrProtocol)
	}
	value = append(make([]byte, 0, size), body[:size]...)
	end, err := rr.readLine()
	if err != nil {
		return nil, 0, false, 0, err
	}
	if end != "END" {
		return nil, 0, false, 0, fmt.Errorf("%w: expected END after VALUE, got %q", ErrProtocol, end)
	}
	return value, flags, true, 0, nil
}

// ReadSimple consumes a one-line response (STORED, DELETED, NOT_FOUND,
// OK, TOUCHED, VERSION …) and returns it.
func (rr *ReplyReader) ReadSimple() (string, error) {
	line, err := rr.readLine()
	if err != nil {
		return "", err
	}
	if err := errorFromLine(line); err != nil {
		return "", err
	}
	return line, nil
}

// ReadStats consumes a stats response into a name → value map.
func (rr *ReplyReader) ReadStats() (map[string]string, error) {
	out := make(map[string]string)
	for {
		line, err := rr.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		if err := errorFromLine(line); err != nil {
			return nil, err
		}
		rest, ok := strings.CutPrefix(line, "STAT ")
		if !ok {
			return nil, fmt.Errorf("%w: bad STAT line %q", ErrProtocol, line)
		}
		name, value, ok := strings.Cut(rest, " ")
		if !ok {
			return nil, fmt.Errorf("%w: bad STAT line %q", ErrProtocol, line)
		}
		out[name] = value
	}
}

// HotKeyTableEntry is one row of a hotkeys response: a promoted key and
// its serving set, home node first.
type HotKeyTableEntry struct {
	Key   string
	Nodes []string
}

// ReadHotKeys consumes a hotkeys response: a "HOTKEYS <version>" header,
// zero or more "HK <key> <node>..." rows, and END.
func (rr *ReplyReader) ReadHotKeys() (uint64, []HotKeyTableEntry, error) {
	line, err := rr.readLine()
	if err != nil {
		return 0, nil, err
	}
	if err := errorFromLine(line); err != nil {
		return 0, nil, err
	}
	rest, ok := strings.CutPrefix(line, "HOTKEYS ")
	if !ok {
		return 0, nil, fmt.Errorf("%w: bad HOTKEYS header %q", ErrProtocol, line)
	}
	version, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: bad HOTKEYS version %q", ErrProtocol, line)
	}
	var entries []HotKeyTableEntry
	for {
		line, err := rr.readLine()
		if err != nil {
			return 0, nil, err
		}
		if line == "END" {
			return version, entries, nil
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[0] != "HK" {
			return 0, nil, fmt.Errorf("%w: bad HK line %q", ErrProtocol, line)
		}
		entries = append(entries, HotKeyTableEntry{Key: fields[1], Nodes: fields[2:]})
	}
}

// FormatHKPut renders a replica value push.
func FormatHKPut(key string, flags uint32, exptime int64, value []byte, noreply bool) []byte {
	var b bytes.Buffer
	b.Grow(len(key) + len(value) + 48)
	b.WriteString("hkput ")
	b.WriteString(key)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(uint64(flags), 10))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(exptime, 10))
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(len(value)))
	if noreply {
		b.WriteString(" noreply")
	}
	b.WriteString("\r\n")
	b.Write(value)
	b.WriteString("\r\n")
	return b.Bytes()
}

// FormatHKDel renders a replica invalidation.
func FormatHKDel(key string, noreply bool) []byte {
	if noreply {
		return []byte("hkdel " + key + " noreply\r\n")
	}
	return []byte("hkdel " + key + "\r\n")
}

// FormatHKTouch renders a replica TTL refresh.
func FormatHKTouch(key string, exptime int64, noreply bool) []byte {
	line := "hktouch " + key + " " + strconv.FormatInt(exptime, 10)
	if noreply {
		line += " noreply"
	}
	return []byte(line + "\r\n")
}

// FormatSet renders a set request header + payload.
func FormatSet(key string, flags uint32, exptime int64, value []byte, noreply bool) []byte {
	var b bytes.Buffer
	b.Grow(len(key) + len(value) + 48)
	b.WriteString("set ")
	b.WriteString(key)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(uint64(flags), 10))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(exptime, 10))
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(len(value)))
	if noreply {
		b.WriteString(" noreply")
	}
	b.WriteString("\r\n")
	b.Write(value)
	b.WriteString("\r\n")
	return b.Bytes()
}

// FormatLeaseGet renders an lget request line.
func FormatLeaseGet(key string) []byte {
	return []byte("lget " + key + "\r\n")
}

// FormatLeaseSet renders an lset request header + payload: a fill gated
// by the lease token handed out by the miss.
func FormatLeaseSet(key string, flags uint32, exptime int64, value []byte, token uint64, noreply bool) []byte {
	var b bytes.Buffer
	b.Grow(len(key) + len(value) + 64)
	b.WriteString("lset ")
	b.WriteString(key)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(uint64(flags), 10))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(exptime, 10))
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(len(value)))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(token, 10))
	if noreply {
		b.WriteString(" noreply")
	}
	b.WriteString("\r\n")
	b.Write(value)
	b.WriteString("\r\n")
	return b.Bytes()
}

// FormatGet renders a (multi-)get request line.
func FormatGet(keys []string) []byte {
	var b bytes.Buffer
	b.WriteString("get")
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
	}
	b.WriteString("\r\n")
	return b.Bytes()
}

// FormatDelete renders a delete request line.
func FormatDelete(key string, noreply bool) []byte {
	if noreply {
		return []byte("delete " + key + " noreply\r\n")
	}
	return []byte("delete " + key + "\r\n")
}
