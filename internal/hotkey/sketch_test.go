package hotkey

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/workload"
)

// TestSketchTopKRecall is the sketch accuracy property test: for seeded
// Zipf streams, the SpaceSaving summary must recover at least 95% of the
// true top-K and honor its per-entry error bound (true ≤ est ≤ true + err,
// err ≤ N/capacity).
func TestSketchTopKRecall(t *testing.T) {
	const (
		draws    = 100_000
		keyspace = 5_000
		capacity = 256
		topK     = 20
	)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		zipf, err := workload.NewZipf(rng, 1.1, keyspace)
		if err != nil {
			t.Fatalf("NewZipf: %v", err)
		}
		sk := NewSketch(capacity)
		exact := make(map[string]uint64, keyspace)
		for i := 0; i < draws; i++ {
			key := workload.KeyName(zipf.Next())
			exact[key]++
			sk.Record([]byte(key))
		}

		// True top-K by exact count (key-ascending tie break, matching Top).
		type kc struct {
			key   string
			count uint64
		}
		all := make([]kc, 0, len(exact))
		for k, c := range exact {
			all = append(all, kc{k, c})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].count != all[j].count {
				return all[i].count > all[j].count
			}
			return all[i].key < all[j].key
		})
		truth := make(map[string]struct{}, topK)
		for _, e := range all[:topK] {
			truth[e.key] = struct{}{}
		}

		got := sk.Top(topK)
		recalled := 0
		for _, e := range got {
			if _, ok := truth[e.Key]; ok {
				recalled++
			}
		}
		if recall := float64(recalled) / float64(topK); recall < 0.95 {
			t.Errorf("seed %d: top-%d recall %.2f < 0.95 (%d/%d)", seed, topK, recall, recalled, topK)
		}

		// Error bounds on every monitored entry the sketch reports.
		maxErr := sk.Total() / capacity
		for _, e := range sk.Top(capacity) {
			truthCount := exact[e.Key]
			if e.Count < truthCount {
				t.Errorf("seed %d: key %s estimate %d below true count %d", seed, e.Key, e.Count, truthCount)
			}
			if e.Count > truthCount+e.Err {
				t.Errorf("seed %d: key %s estimate %d exceeds true+err %d+%d", seed, e.Key, e.Count, truthCount, e.Err)
			}
			if e.Err > maxErr {
				t.Errorf("seed %d: key %s err bound %d exceeds N/capacity %d", seed, e.Key, e.Err, maxErr)
			}
		}
		if sk.Total() != draws {
			t.Errorf("seed %d: total %d != %d draws", seed, sk.Total(), draws)
		}
	}
}

func TestSketchDecayHalvesWindow(t *testing.T) {
	sk := NewSketch(8)
	for i := 0; i < 10; i++ {
		sk.Record([]byte("hot"))
	}
	sk.Record([]byte("cold"))
	sk.Decay()
	if sk.Total() != 5 {
		t.Fatalf("total after decay = %d, want 5", sk.Total())
	}
	top := sk.Top(8)
	if len(top) != 1 || top[0].Key != "hot" || top[0].Count != 5 {
		t.Fatalf("after decay: %+v, want only hot=5 (cold dropped at zero)", top)
	}
}

func TestDetectorSampling(t *testing.T) {
	d := NewDetector(16, 8)
	for i := 0; i < 800; i++ {
		d.Record([]byte("k"))
	}
	_, total := d.Top(1)
	if total != 100 {
		t.Fatalf("sampled total = %d, want 800/8 = 100", total)
	}
	// sampleRate < 2 records everything.
	d = NewDetector(16, 1)
	for i := 0; i < 50; i++ {
		d.Record([]byte("k"))
	}
	if _, total := d.Top(1); total != 50 {
		t.Fatalf("unsampled total = %d, want 50", total)
	}
}
