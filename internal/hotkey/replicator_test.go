package hotkey

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/hashring"
)

// trio is a three-node in-process fixture: caches, replicators, and a
// LocalPusher connecting them.
type trio struct {
	names  []string
	caches map[string]*cache.Cache
	reps   map[string]*Replicator
}

func newTrio(t *testing.T, cfg Config) *trio {
	t.Helper()
	names := []string{"a", "b", "c"}
	pusher := NewLocalPusher()
	tr := &trio{
		names:  names,
		caches: make(map[string]*cache.Cache),
		reps:   make(map[string]*Replicator),
	}
	for _, name := range names {
		cc, err := cache.New(8 * cache.PageSize)
		if err != nil {
			t.Fatalf("cache.New: %v", err)
		}
		rep := New(name, cc, pusher, cfg)
		pusher.Register(name, LocalNode{Store: cc, Rep: rep})
		tr.caches[name] = cc
		tr.reps[name] = rep
	}
	for _, rep := range tr.reps {
		rep.MembershipChanged(names)
	}
	return tr
}

// keyOwnedBy finds a key homed on the wanted node under the trio's ring.
func (tr *trio) keyOwnedBy(t *testing.T, want string) string {
	t.Helper()
	ring, err := hashring.New(tr.names)
	if err != nil {
		t.Fatalf("hashring.New: %v", err)
	}
	for i := 0; i < 1000; i++ {
		key := "key-" + string(rune('a'+i%26)) + "-" + time.Unix(int64(i), 0).UTC().Format("150405")
		if owner, err := ring.Get(key); err == nil && owner == want {
			return key
		}
	}
	t.Fatalf("no key owned by %s found", want)
	return ""
}

func (tr *trio) replicaOf(t *testing.T, key string) string {
	t.Helper()
	ring, err := hashring.New(tr.names)
	if err != nil {
		t.Fatalf("hashring.New: %v", err)
	}
	nodes, err := ring.GetN(key, 2)
	if err != nil || len(nodes) != 2 {
		t.Fatalf("GetN(%q, 2) = %v, %v", key, nodes, err)
	}
	return nodes[1]
}

func testConfig() Config {
	return Config{
		Capacity:       64,
		SampleRate:     1,
		TopK:           4,
		ShareThreshold: 0.2,
		Replicas:       2,
		MinSamples:     10,
		CooldownTicks:  2,
	}
}

func TestTickPromotesAndPushes(t *testing.T) {
	tr := newTrio(t, testConfig())
	key := tr.keyOwnedBy(t, "a")
	replica := tr.replicaOf(t, key)
	repA := tr.reps["a"]

	if err := tr.caches["a"].SetBytes([]byte(key), []byte("v1"), 7, time.Time{}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	for i := 0; i < 50; i++ {
		repA.RecordGet([]byte(key))
	}
	repA.Tick()

	if got := repA.Promoted(); len(got) != 1 || got[0] != key {
		t.Fatalf("promoted = %v, want [%s]", got, key)
	}
	v, flags, _, ok := tr.caches[replica].PeekFull(key)
	if !ok || string(v) != "v1" || flags != 7 {
		t.Fatalf("replica copy on %s = %q/%d/%v, want v1/7/true", replica, v, flags, ok)
	}
	if !tr.reps[replica].HeldAsReplica(key) {
		t.Fatalf("replica %s did not mark %q held", replica, key)
	}
	if tr.reps[replica].IsOwned(key) {
		t.Fatalf("replica-held %q must be non-owned for migration", key)
	}
	version, entries := repA.Table()
	if version == 0 || len(entries) != 1 || entries[0].Key != key {
		t.Fatalf("table = v%d %+v", version, entries)
	}
	if entries[0].Nodes[0] != "a" || entries[0].Nodes[1] != replica {
		t.Fatalf("serving set = %v, want [a %s]", entries[0].Nodes, replica)
	}
	if cs := repA.Snapshot(); cs.Promotions != 1 || cs.ReplicaPushes == 0 {
		t.Fatalf("counters = %+v", cs)
	}
}

func TestWriteDeleteFanOut(t *testing.T) {
	tr := newTrio(t, testConfig())
	key := tr.keyOwnedBy(t, "a")
	replica := tr.replicaOf(t, key)
	repA := tr.reps["a"]

	if err := repA.Promote(key); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	repA.OnWrite([]byte(key), []byte("v2"), 3, time.Time{})
	if v, _, _, ok := tr.caches[replica].PeekFull(key); !ok || string(v) != "v2" {
		t.Fatalf("replica copy after write = %q/%v, want v2", v, ok)
	}

	repA.OnDelete([]byte(key))
	if _, _, _, ok := tr.caches[replica].PeekFull(key); ok {
		t.Fatalf("replica copy survived delete fan-out")
	}
	if tr.reps[replica].HeldAsReplica(key) {
		t.Fatalf("replica mark survived delete fan-out")
	}
}

func TestStaleDeleteDoesNotDropOwnedCopy(t *testing.T) {
	tr := newTrio(t, testConfig())
	key := tr.keyOwnedBy(t, "a")
	replica := tr.replicaOf(t, key)

	// The replica holds the key but its mark is gone — as after a
	// migration made this node the owner. A stale hkdel must be a no-op.
	if err := tr.caches[replica].SetBytes([]byte(key), []byte("owned"), 0, time.Time{}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	if tr.reps[replica].DropReplica([]byte(key)) {
		t.Fatalf("DropReplica reported a mark that was never set")
	}
	pusher := NewLocalPusher()
	pusher.Register(replica, LocalNode{Store: tr.caches[replica], Rep: tr.reps[replica]})
	if err := pusher.Push(replica, PushOp{Op: OpDel, Key: key}); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if _, _, _, ok := tr.caches[replica].PeekFull(key); !ok {
		t.Fatalf("stale delete destroyed an owned copy")
	}
}

func TestCooldownDemotion(t *testing.T) {
	cfg := testConfig()
	tr := newTrio(t, cfg)
	key := tr.keyOwnedBy(t, "a")
	replica := tr.replicaOf(t, key)
	repA := tr.reps["a"]

	if err := tr.caches["a"].SetBytes([]byte(key), []byte("v"), 0, time.Time{}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	for i := 0; i < 50; i++ {
		repA.RecordGet([]byte(key))
	}
	repA.Tick()
	if len(repA.Promoted()) != 1 {
		t.Fatalf("not promoted")
	}
	// Traffic stops: the decayed window cools over a few ticks, then
	// CooldownTicks cold evaluations demote the key and invalidate the
	// replica copy.
	demotedAfter := -1
	for i := 1; i <= 10; i++ {
		repA.Tick()
		if len(repA.Promoted()) == 0 {
			demotedAfter = i
			break
		}
	}
	if demotedAfter < 0 {
		t.Fatalf("still promoted after 10 idle ticks")
	}
	if demotedAfter < cfg.CooldownTicks {
		t.Fatalf("demoted after %d ticks, before the %d-tick cooldown", demotedAfter, cfg.CooldownTicks)
	}
	if _, _, _, ok := tr.caches[replica].PeekFull(key); ok {
		t.Fatalf("replica copy survived demotion")
	}
	if cs := repA.Snapshot(); cs.Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", cs.Demotions)
	}
}

func TestMembershipFlipIsStateOnly(t *testing.T) {
	tr := newTrio(t, testConfig())
	key := tr.keyOwnedBy(t, "a")
	repA := tr.reps["a"]

	if err := tr.caches["a"].SetBytes([]byte(key), []byte("v"), 0, time.Time{}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	if err := repA.Promote(key); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	before := repA.Snapshot()

	// A flip that removes this node's ownership must drop the promotion
	// without pushing anything (pushes during a flip would race the
	// migration data plane).
	repA.MembershipChanged([]string{"b", "c"})
	after := repA.Snapshot()
	if after.ReplicaPushes != before.ReplicaPushes {
		t.Fatalf("flip pushed data: %d → %d", before.ReplicaPushes, after.ReplicaPushes)
	}
	if after.FlipDrops != 1 || after.Promoted != 0 {
		t.Fatalf("flip state = %+v, want promotion dropped", after)
	}
	if after.TableVersion == before.TableVersion {
		t.Fatalf("flip did not bump the table version")
	}
}

func TestFlipRecomputesReplicasAndResyncsOnTick(t *testing.T) {
	tr := newTrio(t, testConfig())
	key := tr.keyOwnedBy(t, "a")
	oldReplica := tr.replicaOf(t, key)
	repA := tr.reps["a"]

	if err := tr.caches["a"].SetBytes([]byte(key), []byte("v"), 0, time.Time{}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	if err := repA.Promote(key); err != nil {
		t.Fatalf("Promote: %v", err)
	}

	// Remove the old replica from the membership: the promotion survives
	// (this node still homes the key), the serving set is recomputed, and
	// the value reaches the new replica on the next Tick, not during the
	// flip itself.
	var survivors []string
	for _, n := range tr.names {
		if n != oldReplica {
			survivors = append(survivors, n)
		}
	}
	repA.MembershipChanged(survivors)
	if got := repA.Promoted(); len(got) != 1 || got[0] != key {
		t.Fatalf("promotion dropped by flip: %v", got)
	}
	newReplica := survivors[0]
	if newReplica == "a" {
		newReplica = survivors[1]
	}
	if _, _, _, ok := tr.caches[newReplica].PeekFull(key); ok {
		t.Fatalf("flip pushed the value before Tick")
	}
	repA.Tick()
	if _, _, _, ok := tr.caches[newReplica].PeekFull(key); !ok {
		t.Fatalf("post-flip Tick did not resync the new replica %s", newReplica)
	}
}

func TestFlipUnmarksNowOwnedReplicas(t *testing.T) {
	tr := newTrio(t, testConfig())
	key := tr.keyOwnedBy(t, "a")
	replica := tr.replicaOf(t, key)
	repR := tr.reps[replica]

	repR.MarkReplica([]byte(key))
	if repR.IsOwned(key) {
		t.Fatalf("marked key reported owned")
	}
	// Membership without the old home: if the key now hashes to the
	// replica, the mark must clear so migration ships the copy.
	var survivors []string
	for _, n := range tr.names {
		if n != "a" {
			survivors = append(survivors, n)
		}
	}
	ring, err := hashring.New(survivors)
	if err != nil {
		t.Fatalf("hashring.New: %v", err)
	}
	owner, err := ring.Get(key)
	if err != nil {
		t.Fatalf("ring.Get: %v", err)
	}
	repR.MembershipChanged(survivors)
	if owner == replica && !repR.IsOwned(key) {
		t.Fatalf("flip left the now-owned key marked as replica")
	}
	if owner != replica && repR.IsOwned(key) {
		t.Fatalf("flip cleared a mark for a key still homed elsewhere")
	}
}

func TestMarkReplicaSkipsOwnedKeys(t *testing.T) {
	tr := newTrio(t, testConfig())
	key := tr.keyOwnedBy(t, "a")
	repA := tr.reps["a"]
	repA.MarkReplica([]byte(key))
	if !repA.IsOwned(key) {
		t.Fatalf("home node marked its own key as replica-held")
	}
}
