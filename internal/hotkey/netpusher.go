package hotkey

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/memproto"
)

// NetPusher delivers push operations over the memcached wire protocol
// (hkput/hkdel/hktouch) to replica nodes, which in the cluster are
// addressed by their listen address. It keeps one lazily-dialed connection
// per target and drops it on any error, redialing on the next push.
type NetPusher struct {
	dialTimeout time.Duration
	opTimeout   time.Duration

	mu    sync.Mutex
	conns map[string]*pushConn
}

type pushConn struct {
	c  net.Conn
	rr *memproto.ReplyReader
}

// NewNetPusher creates a pusher with the given per-push dial and I/O
// timeouts (both default to 2s when zero).
func NewNetPusher(dialTimeout, opTimeout time.Duration) *NetPusher {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	if opTimeout <= 0 {
		opTimeout = 2 * time.Second
	}
	return &NetPusher{
		dialTimeout: dialTimeout,
		opTimeout:   opTimeout,
		conns:       make(map[string]*pushConn),
	}
}

// Push implements Pusher.
func (p *NetPusher) Push(node string, op PushOp) error {
	var payload []byte
	switch op.Op {
	case OpPut:
		payload = memproto.FormatHKPut(op.Key, op.Flags, exptimeOf(op.Expiry), op.Value, false)
	case OpDel:
		payload = memproto.FormatHKDel(op.Key, false)
	case OpTouch:
		payload = memproto.FormatHKTouch(op.Key, exptimeOf(op.Expiry), false)
	default:
		return fmt.Errorf("hotkey: unknown push op %d", op.Op)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	pc, ok := p.conns[node]
	if !ok {
		c, err := net.DialTimeout("tcp", node, p.dialTimeout)
		if err != nil {
			return err
		}
		pc = &pushConn{c: c, rr: memproto.NewReplyReader(c)}
		p.conns[node] = pc
	}
	if err := p.do(pc, payload); err != nil {
		_ = pc.c.Close()
		delete(p.conns, node)
		return err
	}
	return nil
}

func (p *NetPusher) do(pc *pushConn, payload []byte) error {
	_ = pc.c.SetDeadline(time.Now().Add(p.opTimeout))
	if _, err := pc.c.Write(payload); err != nil {
		return err
	}
	// Every push kind answers with a single line (STORED, DELETED,
	// NOT_FOUND, TOUCHED); any of them means the stream is in sync.
	_, err := pc.rr.ReadSimple()
	return err
}

// Close drops all connections.
func (p *NetPusher) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for node, pc := range p.conns {
		_ = pc.c.Close()
		delete(p.conns, node)
	}
}

// exptimeOf converts an expiry time to a wire exptime: zero time means
// "never" (0), anything else is sent as an absolute Unix timestamp.
func exptimeOf(expiry time.Time) int64 {
	if expiry.IsZero() {
		return 0
	}
	return expiry.Unix()
}
