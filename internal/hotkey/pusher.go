package hotkey

import (
	"fmt"
	"sync"
	"time"
)

// Op is the kind of a replica push.
type Op uint8

// The push kinds: store/refresh a replica copy, drop it, refresh its TTL.
const (
	OpPut Op = iota + 1
	OpDel
	OpTouch
)

// PushOp is one home→replica maintenance operation. Value is only set for
// OpPut; Expiry's zero value means "never expires" for OpPut/OpTouch.
type PushOp struct {
	Op     Op
	Key    string
	Value  []byte
	Flags  uint32
	Expiry time.Time
}

// Pusher delivers push operations to a replica node. Implementations:
// LocalPusher (in-process, used by tests and the chaos harness) and
// NetPusher (the hkput/hkdel/hktouch wire commands).
type Pusher interface {
	Push(node string, op PushOp) error
}

// LocalStore is the cache surface LocalPusher applies pushes through;
// *cache.Cache satisfies it.
type LocalStore interface {
	SetBytes(key, value []byte, flags uint32, expiresAt time.Time) error
	Delete(key string) error
	TouchExpiry(key string, expiresAt time.Time) error
}

// LocalNode is one LocalPusher target: the node's store and (optionally)
// its replicator, which tracks the replica-held marks.
type LocalNode struct {
	Store LocalStore
	Rep   *Replicator
}

// LocalPusher applies push operations synchronously to in-process caches.
// It gives the chaos harness a deterministic replica data plane: pushes
// land (and tick the logical clock) in call order, with no sockets or
// goroutines involved.
type LocalPusher struct {
	mu    sync.RWMutex
	nodes map[string]LocalNode
}

// NewLocalPusher creates an empty in-process pusher.
func NewLocalPusher() *LocalPusher {
	return &LocalPusher{nodes: make(map[string]LocalNode)}
}

// Register adds (or replaces) a target node.
func (p *LocalPusher) Register(name string, node LocalNode) {
	p.mu.Lock()
	p.nodes[name] = node
	p.mu.Unlock()
}

// Deregister removes a target node.
func (p *LocalPusher) Deregister(name string) {
	p.mu.Lock()
	delete(p.nodes, name)
	p.mu.Unlock()
}

// Push implements Pusher with the same semantics as the wire commands:
// a put stores the copy and marks it replica-held, a delete drops the copy
// only while it is still marked, a touch refreshes a marked copy's TTL.
func (p *LocalPusher) Push(node string, op PushOp) error {
	p.mu.RLock()
	n, ok := p.nodes[node]
	p.mu.RUnlock()
	if !ok {
		return fmt.Errorf("hotkey: unknown push target %q", node)
	}
	switch op.Op {
	case OpPut:
		if err := n.Store.SetBytes([]byte(op.Key), op.Value, op.Flags, op.Expiry); err != nil {
			return err
		}
		if n.Rep != nil {
			n.Rep.MarkReplica([]byte(op.Key))
		}
		return nil
	case OpDel:
		if n.Rep == nil || n.Rep.DropReplica([]byte(op.Key)) {
			_ = n.Store.Delete(op.Key)
		}
		return nil
	case OpTouch:
		if n.Rep == nil || n.Rep.HeldAsReplica(op.Key) {
			_ = n.Store.TouchExpiry(op.Key, op.Expiry)
		}
		return nil
	default:
		return fmt.Errorf("hotkey: unknown push op %d", op.Op)
	}
}
