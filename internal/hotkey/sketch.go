// Package hotkey implements online hot-key detection and replicated
// serving for the ElMem tier. Node-count elasticity alone cannot absorb
// Zipf-extreme skew: a handful of keys saturate their consistent-hash
// owner long before the tier runs out of capacity. The fix, following
// Facebook's memcache deployment, is to detect the hottest keys online
// with a cheap frequency sketch, promote them to a small replica set
// served by R nodes, and let clients spread reads across that set while
// writes keep flowing through the home node (so invalidation stays a
// single fan-out).
//
// The package has two halves: the Detector (a sampled SpaceSaving top-K
// sketch fed from the server's zero-allocation hot path) and the
// Replicator (promotion/demotion state, replica pushes, and the versioned
// hot-key table clients poll). See DESIGN.md, "Hot-key replication".
package hotkey

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Sketch is a SpaceSaving top-K frequency summary (Metwally et al.): a
// fixed set of monitored keys with counts and per-key overestimation
// bounds. When an unmonitored key arrives at capacity, it replaces the
// minimum-count entry and inherits its count as the error bound — the
// classic guarantee is count ≤ true+err and err ≤ N/capacity.
//
// Record is zero-allocation in steady state: a monitored key is a map
// lookup (the compiler elides the []byte→string conversion for map
// indexing) plus a heap sift. Only admitting a brand-new key materializes
// a string. Sketch is not safe for concurrent use; Detector serializes it.
type Sketch struct {
	capacity int
	total    uint64
	entries  map[string]*ssEntry
	heap     []*ssEntry // min-heap by count
}

type ssEntry struct {
	key   string
	count uint64
	errs  uint64 // overestimation bound inherited on replacement
	idx   int    // heap position
}

// NewSketch creates a sketch monitoring at most capacity keys.
func NewSketch(capacity int) *Sketch {
	if capacity < 1 {
		capacity = 1
	}
	return &Sketch{
		capacity: capacity,
		entries:  make(map[string]*ssEntry, capacity),
		heap:     make([]*ssEntry, 0, capacity),
	}
}

// Record counts one observation of key.
func (s *Sketch) Record(key []byte) {
	s.total++
	if e, ok := s.entries[string(key)]; ok { // no alloc: map index conversion
		e.count++
		s.siftDown(e.idx)
		return
	}
	if len(s.heap) < s.capacity {
		e := &ssEntry{key: string(key), count: 1, idx: len(s.heap)}
		s.heap = append(s.heap, e)
		s.entries[e.key] = e
		s.siftUp(e.idx)
		return
	}
	// Replace the minimum: SpaceSaving's admission rule.
	e := s.heap[0]
	delete(s.entries, e.key)
	e.key = string(key)
	e.errs = e.count
	e.count++
	s.entries[e.key] = e
	s.siftDown(0)
}

// Total reports how many observations the sketch has absorbed since the
// last Decay halving.
func (s *Sketch) Total() uint64 { return s.total }

// KeyCount is one reported top entry.
type KeyCount struct {
	// Key is the monitored key.
	Key string
	// Count is the estimated frequency (count ≤ true + Err).
	Count uint64
	// Err is the overestimation bound inherited at admission.
	Err uint64
}

// Top returns up to k entries ordered by count descending (key ascending
// on ties, so the order is deterministic).
func (s *Sketch) Top(k int) []KeyCount {
	out := make([]KeyCount, 0, len(s.heap))
	for _, e := range s.heap {
		out = append(out, KeyCount{Key: e.key, Count: e.count, Err: e.errs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Decay halves every count (and the total), dropping entries that reach
// zero. Called once per evaluation tick, it turns the sketch into an
// exponentially decayed window so yesterday's flash crowd cannot pin
// today's promotions.
func (s *Sketch) Decay() {
	kept := s.heap[:0]
	for _, e := range s.heap {
		e.count /= 2
		e.errs /= 2
		if e.count == 0 {
			delete(s.entries, e.key)
			continue
		}
		kept = append(kept, e)
	}
	s.heap = kept
	for i := range s.heap {
		s.heap[i].idx = i
	}
	// Re-establish the heap property bottom-up.
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	s.total /= 2
}

func (s *Sketch) less(i, j int) bool { return s.heap[i].count < s.heap[j].count }

func (s *Sketch) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].idx = i
	s.heap[j].idx = j
}

func (s *Sketch) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		s.swap(i, min)
		i = min
	}
}

// Detector is the hot-path front of the sketch: a sampling gate (one in
// SampleRate operations, rounded up to a power of two) ahead of a
// mutex-guarded Sketch. The gate is a single atomic add and mask test, so
// the per-request cost on the serving hot path stays in the
// single-nanosecond range and performs zero heap allocations.
type Detector struct {
	mask uint64
	ops  atomic.Uint64

	mu sync.Mutex
	sk *Sketch
}

// NewDetector creates a detector with the given sketch capacity, sampling
// one in sampleRate operations (values < 2 record every operation).
func NewDetector(capacity, sampleRate int) *Detector {
	mask := uint64(0)
	if sampleRate > 1 {
		r := uint64(1)
		for r < uint64(sampleRate) {
			r <<= 1
		}
		mask = r - 1
	}
	return &Detector{mask: mask, sk: NewSketch(capacity)}
}

// Record samples one observation of key. Zero allocations for keys already
// monitored; sampled-out calls are one atomic add.
func (d *Detector) Record(key []byte) {
	if d.mask != 0 && d.ops.Add(1)&d.mask != 0 {
		return
	}
	d.RecordSampled(key)
}

// Mask exposes the power-of-two sampling mask for callers that keep their
// own cheaper op counter (e.g. one per connection, avoiding the shared
// atomic): record when counter&Mask() == 0.
func (d *Detector) Mask() uint64 { return d.mask }

// RecordSampled records one observation that already passed the caller's
// sampling gate.
func (d *Detector) RecordSampled(key []byte) {
	d.mu.Lock()
	d.sk.Record(key)
	d.mu.Unlock()
}

// Top snapshots the k hottest entries and the sampled total they are
// measured against.
func (d *Detector) Top(k int) ([]KeyCount, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sk.Top(k), d.sk.Total()
}

// Decay halves the window (see Sketch.Decay).
func (d *Detector) Decay() {
	d.mu.Lock()
	d.sk.Decay()
	d.mu.Unlock()
}
