package hotkey

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashring"
)

// Store is the local-value surface the replicator reads promoted values
// through; *cache.Cache satisfies it via PeekFull.
type Store interface {
	PeekFull(key string) (value []byte, flags uint32, expiresAt time.Time, ok bool)
}

// Config parameterizes a Replicator. The zero value is usable: every field
// falls back to the default noted on it.
type Config struct {
	// Capacity is the sketch size — how many candidate keys are monitored
	// (default 128).
	Capacity int
	// SampleRate samples one in SampleRate hot-path operations into the
	// sketch, rounded up to a power of two (default 32; 1 records all).
	// Detection needs relative frequencies, not absolute counts, and under
	// the Zipf-extreme skew that motivates promotion the hot keys dominate
	// any uniform sample — so the rate trades only detection latency, not
	// accuracy, against hot-path cost.
	SampleRate int
	// TopK bounds how many keys this node keeps promoted (default 16).
	TopK int
	// ShareThreshold promotes a key once its estimated share of sampled
	// operations reaches it (default 0.05), and demotes after the share
	// stays below ShareThreshold/2 for CooldownTicks ticks.
	ShareThreshold float64
	// Replicas is the serving-set size R including the home node
	// (default 2, i.e. one replica). Values < 2 disable promotion.
	Replicas int
	// MinSamples gates evaluation: a tick with fewer sampled operations in
	// the window promotes nothing (default 64).
	MinSamples uint64
	// CooldownTicks is how many consecutive cold ticks demote a promoted
	// key (default 3).
	CooldownTicks int
	// TickInterval, when positive, runs Tick on a background ticker
	// between Start and Stop. Zero leaves ticking to the caller
	// (deterministic tests and benchmarks drive Tick directly).
	TickInterval time.Duration
	// RingReplicas is the consistent-hash virtual-node count; it must
	// match the client and agent rings (default hashring.DefaultReplicas).
	RingReplicas int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 128
	}
	if c.SampleRate <= 0 {
		c.SampleRate = 32
	}
	if c.TopK <= 0 {
		c.TopK = 16
	}
	if c.ShareThreshold <= 0 {
		c.ShareThreshold = 0.05
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.MinSamples == 0 {
		c.MinSamples = 64
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 3
	}
	if c.RingReplicas <= 0 {
		c.RingReplicas = hashring.DefaultReplicas
	}
	return c
}

// TableEntry is one row of the versioned hot-key table: a promoted key and
// its serving set, home node first.
type TableEntry struct {
	Key   string
	Nodes []string
}

// CountersSnapshot is a point-in-time view of the replicator's counters,
// published as the elmem_hotkey expvar and printed in `stats`.
type CountersSnapshot struct {
	Promotions    int64  `json:"promotions"`
	Demotions     int64  `json:"demotions"`
	FlipDrops     int64  `json:"flipDrops"`
	ReplicaPushes int64  `json:"replicaPushes"`
	PushErrors    int64  `json:"pushErrors"`
	ReplicaReads  int64  `json:"replicaReads"`
	Promoted      int    `json:"promoted"`
	ReplicaHeld   int    `json:"replicaHeld"`
	TableVersion  uint64 `json:"tableVersion"`
}

// promoEntry is one promoted key's state.
type promoEntry struct {
	replicas []string // serving replicas, home excluded
	cold     int      // consecutive ticks below the demotion threshold
	dirty    bool     // replica set changed; re-push value on next Tick
}

// Replicator owns one node's hot-key state: the detector, the set of keys
// this node has promoted (it is their home), and the set of replica copies
// it holds for other homes. Writes to a promoted key fan out to its
// replicas through the Pusher; membership flips adjust state only and
// defer re-pushes to the next Tick, so a flip in the middle of a migration
// never moves data by itself.
type Replicator struct {
	cfg    Config
	node   string
	store  Store
	pusher Pusher
	det    *Detector

	// Hot-path gates: loads that keep the per-request cost near zero when
	// nothing is promoted or held.
	promotedCount atomic.Int64
	replicaCount  atomic.Int64

	version atomic.Uint64

	promotions atomic.Int64
	demotions  atomic.Int64
	flipDrops  atomic.Int64
	pushes     atomic.Int64
	pushErrs   atomic.Int64
	repReads   atomic.Int64

	mu          sync.RWMutex
	members     []string
	ring        *hashring.Ring
	promoted    map[string]*promoEntry
	replicaHeld map[string]struct{}

	tickStop chan struct{}
	tickWG   sync.WaitGroup
}

// New creates a Replicator for the named node. store may be nil only if
// promotion is never triggered (detection-only use).
func New(node string, store Store, pusher Pusher, cfg Config) *Replicator {
	cfg = cfg.withDefaults()
	return &Replicator{
		cfg:         cfg,
		node:        node,
		store:       store,
		pusher:      pusher,
		det:         NewDetector(cfg.Capacity, cfg.SampleRate),
		promoted:    make(map[string]*promoEntry),
		replicaHeld: make(map[string]struct{}),
	}
}

// Node returns the owning node's name.
func (r *Replicator) Node() string { return r.node }

// SampleMask exposes the detector's sampling mask so the server can gate
// observations with a per-connection counter (a plain increment) instead
// of a shared atomic: observe when counter&SampleMask() == 0.
func (r *Replicator) SampleMask() uint64 { return r.det.Mask() }

// ObserveGet records one read that already passed the caller's sampling
// gate, counting it as a replica read when the key is held for another
// home (so the replica-read counter is a sampled estimate, like the
// sketch itself).
func (r *Replicator) ObserveGet(key []byte) {
	r.det.RecordSampled(key)
	if r.replicaCount.Load() == 0 {
		return
	}
	r.mu.RLock()
	_, held := r.replicaHeld[string(key)] // no alloc: map index conversion
	r.mu.RUnlock()
	if held {
		r.repReads.Add(1)
	}
}

// ObserveWrite records one write that already passed the caller's
// sampling gate.
func (r *Replicator) ObserveWrite(key []byte) {
	r.det.RecordSampled(key)
}

// RecordGet samples a read into the sketch through the detector's own
// atomic gate — the standalone path for callers without a local counter.
func (r *Replicator) RecordGet(key []byte) {
	if m := r.det.Mask(); m != 0 && r.det.ops.Add(1)&m != 0 {
		return
	}
	r.ObserveGet(key)
}

// RecordWrite samples a write into the sketch.
func (r *Replicator) RecordWrite(key []byte) {
	r.det.Record(key)
}

// OnWrite fans a successful home write out to the key's replicas. It is a
// no-op (one atomic load) unless this node has promoted keys.
func (r *Replicator) OnWrite(key, value []byte, flags uint32, expiry time.Time) {
	reps := r.replicasOf(key)
	if reps == nil {
		return
	}
	r.pushAll(reps, PushOp{
		Op:     OpPut,
		Key:    string(key),
		Value:  append([]byte(nil), value...),
		Flags:  flags,
		Expiry: expiry,
	})
}

// OnMutate re-pushes the key's current home value to its replicas after an
// in-place mutation (incr/decr/append/prepend) whose result bytes the
// caller does not have on hand.
func (r *Replicator) OnMutate(key []byte) {
	reps := r.replicasOf(key)
	if reps == nil {
		return
	}
	r.syncReplicas(string(key), reps)
}

// OnDelete fans a home delete out to the key's replicas.
func (r *Replicator) OnDelete(key []byte) {
	reps := r.replicasOf(key)
	if reps == nil {
		return
	}
	r.pushAll(reps, PushOp{Op: OpDel, Key: string(key)})
}

// OnTouch fans a home TTL refresh out to the key's replicas.
func (r *Replicator) OnTouch(key []byte, expiry time.Time) {
	reps := r.replicasOf(key)
	if reps == nil {
		return
	}
	r.pushAll(reps, PushOp{Op: OpTouch, Key: string(key), Expiry: expiry})
}

// replicasOf returns a copy of the replica set when key is promoted here,
// nil otherwise.
func (r *Replicator) replicasOf(key []byte) []string {
	if r.promotedCount.Load() == 0 {
		return nil
	}
	r.mu.RLock()
	e, ok := r.promoted[string(key)] // no alloc: map index conversion
	var reps []string
	if ok {
		reps = append([]string(nil), e.replicas...)
	}
	r.mu.RUnlock()
	return reps
}

// MarkReplica records that this node holds a replica copy of key pushed by
// its home. Keys this node owns under the current ring are never marked.
func (r *Replicator) MarkReplica(key []byte) {
	k := string(key)
	r.mu.Lock()
	if r.ring != nil {
		if owner, err := r.ring.Get(k); err == nil && owner == r.node {
			r.mu.Unlock()
			return
		}
	}
	if _, ok := r.replicaHeld[k]; !ok {
		r.replicaHeld[k] = struct{}{}
		r.replicaCount.Store(int64(len(r.replicaHeld)))
	}
	r.mu.Unlock()
}

// DropReplica unmarks a replica copy, reporting whether it was held. The
// server deletes the underlying item only on true, so a stale hkdel from a
// previous home cannot destroy a copy this node now owns.
func (r *Replicator) DropReplica(key []byte) bool {
	r.mu.Lock()
	_, held := r.replicaHeld[string(key)]
	if held {
		delete(r.replicaHeld, string(key))
		r.replicaCount.Store(int64(len(r.replicaHeld)))
	}
	r.mu.Unlock()
	return held
}

// HeldAsReplica reports whether key is currently marked replica-held.
func (r *Replicator) HeldAsReplica(key string) bool {
	r.mu.RLock()
	_, held := r.replicaHeld[key]
	r.mu.RUnlock()
	return held
}

// IsOwned reports whether key counts as owned by this node for migration
// purposes: everything except replica-held copies. Agents install it as
// their owned-filter so replicated items are never double-shipped.
func (r *Replicator) IsOwned(key string) bool {
	if r.replicaCount.Load() == 0 {
		return true
	}
	r.mu.RLock()
	_, held := r.replicaHeld[key]
	r.mu.RUnlock()
	return !held
}

// OwnedFilter returns IsOwned as a free function for Agent.SetOwnedFilter.
func (r *Replicator) OwnedFilter() func(string) bool { return r.IsOwned }

// MembershipChanged implements core.MembershipListener. It adjusts state
// only — promotions whose home moved away are dropped, surviving replica
// sets are recomputed and marked dirty for the next Tick to re-push, and
// replica-held keys that now hash here become owned. No value moves during
// the flip itself, so the flip composes with a concurrent migration's
// data plane.
func (r *Replicator) MembershipChanged(members []string) {
	if len(members) == 0 {
		return
	}
	ring, err := hashring.New(members, hashring.WithReplicas(r.cfg.RingReplicas))
	if err != nil {
		return
	}
	changed := false
	r.mu.Lock()
	r.members = append([]string(nil), members...)
	r.ring = ring
	for key, e := range r.promoted {
		owner, err := ring.Get(key)
		if err != nil || owner != r.node {
			delete(r.promoted, key)
			r.flipDrops.Add(1)
			changed = true
			continue
		}
		reps := r.replicaSetLocked(key)
		if !equalStrings(reps, e.replicas) {
			e.replicas = reps
			e.dirty = true
			changed = true
		}
	}
	for key := range r.replicaHeld {
		if owner, err := ring.Get(key); err == nil && owner == r.node {
			delete(r.replicaHeld, key)
			changed = true
		}
	}
	r.promotedCount.Store(int64(len(r.promoted)))
	r.replicaCount.Store(int64(len(r.replicaHeld)))
	r.mu.Unlock()
	if changed {
		r.version.Add(1)
	}
}

// replicaSetLocked computes the serving replicas for key: the next R-1
// distinct ring successors after the home node. Caller holds r.mu.
func (r *Replicator) replicaSetLocked(key string) []string {
	if r.ring == nil || r.cfg.Replicas < 2 {
		return nil
	}
	nodes, err := r.ring.GetN(key, r.cfg.Replicas)
	if err != nil {
		return nil
	}
	reps := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != r.node {
			reps = append(reps, n)
		}
	}
	return reps
}

// Promote force-promotes key (admin and harness hook): the key must hash
// to this node and a non-empty replica set must exist. The current value,
// if resident, is pushed to every replica synchronously.
func (r *Replicator) Promote(key string) error {
	r.mu.Lock()
	if r.ring == nil {
		r.mu.Unlock()
		return errors.New("hotkey: no membership")
	}
	owner, err := r.ring.Get(key)
	if err != nil || owner != r.node {
		r.mu.Unlock()
		return fmt.Errorf("hotkey: %q is homed on %q, not %q", key, owner, r.node)
	}
	if _, ok := r.promoted[key]; ok {
		r.mu.Unlock()
		return nil
	}
	reps := r.replicaSetLocked(key)
	if len(reps) == 0 {
		r.mu.Unlock()
		return errors.New("hotkey: no replicas available")
	}
	r.promoted[key] = &promoEntry{replicas: reps}
	r.promotedCount.Store(int64(len(r.promoted)))
	r.mu.Unlock()
	r.promotions.Add(1)
	r.version.Add(1)
	r.syncReplicas(key, reps)
	return nil
}

// Tick runs one promotion/demotion evaluation over the decayed sketch
// window: keys whose sampled share crosses the threshold (and that this
// node homes) are promoted up to TopK, promoted keys cold for
// CooldownTicks are demoted with a delete fan-out, and dirty replica sets
// left by a membership flip are re-pushed. Deterministic given the
// operation history: all push orders are key-sorted.
func (r *Replicator) Tick() {
	top, total := r.det.Top(r.cfg.Capacity)
	defer r.det.Decay()

	type demotion struct {
		key      string
		replicas []string
	}
	var demote []demotion
	var resync []string

	r.mu.Lock()
	if r.ring == nil || len(r.members) < 2 {
		r.mu.Unlock()
		return
	}
	hot := make(map[string]bool)
	if total >= r.cfg.MinSamples {
		for _, kc := range top {
			share := float64(kc.Count) / float64(total)
			if share < r.cfg.ShareThreshold/2 {
				break // sorted descending: nothing hotter follows
			}
			if owner, err := r.ring.Get(kc.Key); err != nil || owner != r.node {
				continue // not ours to promote
			}
			if _, held := r.replicaHeld[kc.Key]; held {
				continue // we serve this one for another home
			}
			if e, ok := r.promoted[kc.Key]; ok {
				// Hysteresis: anything above half the threshold keeps an
				// existing promotion warm.
				e.cold = 0
				hot[kc.Key] = true
				continue
			}
			if share < r.cfg.ShareThreshold || len(r.promoted) >= r.cfg.TopK {
				continue
			}
			reps := r.replicaSetLocked(kc.Key)
			if len(reps) == 0 {
				continue
			}
			r.promoted[kc.Key] = &promoEntry{replicas: reps, dirty: true}
			r.promotions.Add(1)
			hot[kc.Key] = true
		}
	}
	for key, e := range r.promoted {
		if hot[key] {
			continue
		}
		e.cold++
		if e.cold >= r.cfg.CooldownTicks {
			demote = append(demote, demotion{key: key, replicas: e.replicas})
			delete(r.promoted, key)
			r.demotions.Add(1)
		}
	}
	for key, e := range r.promoted {
		if e.dirty {
			resync = append(resync, key)
			e.dirty = false
		}
	}
	r.promotedCount.Store(int64(len(r.promoted)))
	r.mu.Unlock()

	sort.Strings(resync)
	sort.Slice(demote, func(i, j int) bool { return demote[i].key < demote[j].key })
	if len(resync)+len(demote) > 0 {
		r.version.Add(1)
	}
	for _, key := range resync {
		r.syncReplicas(key, r.replicasOf([]byte(key)))
	}
	for _, d := range demote {
		r.pushAll(d.replicas, PushOp{Op: OpDel, Key: d.key})
	}
}

// syncReplicas pushes the current home value of key to every replica.
func (r *Replicator) syncReplicas(key string, replicas []string) {
	if r.store == nil || len(replicas) == 0 {
		return
	}
	value, flags, expiry, ok := r.store.PeekFull(key)
	if !ok {
		return // nothing resident yet; the next write will propagate
	}
	r.pushAll(replicas, PushOp{Op: OpPut, Key: key, Value: value, Flags: flags, Expiry: expiry})
}

// pushAll delivers op to every replica, counting pushes and errors. Push
// failures are deliberately non-fatal: a missed replica copy degrades to a
// replica read miss, which clients resolve against the home node.
func (r *Replicator) pushAll(replicas []string, op PushOp) {
	if r.pusher == nil {
		return
	}
	for _, node := range replicas {
		if err := r.pusher.Push(node, op); err != nil {
			r.pushErrs.Add(1)
			continue
		}
		r.pushes.Add(1)
	}
}

// Table snapshots the versioned hot-key table: every promoted key with its
// serving set, home first, sorted by key.
func (r *Replicator) Table() (uint64, []TableEntry) {
	r.mu.RLock()
	entries := make([]TableEntry, 0, len(r.promoted))
	for key, e := range r.promoted {
		nodes := make([]string, 0, len(e.replicas)+1)
		nodes = append(nodes, r.node)
		nodes = append(nodes, e.replicas...)
		entries = append(entries, TableEntry{Key: key, Nodes: nodes})
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return r.version.Load(), entries
}

// Promoted lists this node's promoted keys, sorted.
func (r *Replicator) Promoted() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.promoted))
	for key := range r.promoted {
		out = append(out, key)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ReplicaHeld lists the replica copies this node holds, sorted.
func (r *Replicator) ReplicaHeld() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.replicaHeld))
	for key := range r.replicaHeld {
		out = append(out, key)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Snapshot returns the current counter values.
func (r *Replicator) Snapshot() CountersSnapshot {
	r.mu.RLock()
	promoted := len(r.promoted)
	held := len(r.replicaHeld)
	r.mu.RUnlock()
	return CountersSnapshot{
		Promotions:    r.promotions.Load(),
		Demotions:     r.demotions.Load(),
		FlipDrops:     r.flipDrops.Load(),
		ReplicaPushes: r.pushes.Load(),
		PushErrors:    r.pushErrs.Load(),
		ReplicaReads:  r.repReads.Load(),
		Promoted:      promoted,
		ReplicaHeld:   held,
		TableVersion:  r.version.Load(),
	}
}

// Start launches the background ticker when Config.TickInterval is
// positive; otherwise it is a no-op. Stop joins it.
func (r *Replicator) Start() {
	if r.cfg.TickInterval <= 0 || r.tickStop != nil {
		return
	}
	r.tickStop = make(chan struct{})
	r.tickWG.Add(1)
	go func() {
		defer r.tickWG.Done()
		t := time.NewTicker(r.cfg.TickInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Tick()
			case <-r.tickStop:
				return
			}
		}
	}()
}

// Stop halts the background ticker started by Start.
func (r *Replicator) Stop() {
	if r.tickStop == nil {
		return
	}
	close(r.tickStop)
	r.tickWG.Wait()
	r.tickStop = nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
