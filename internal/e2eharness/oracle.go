package e2eharness

import (
	"fmt"
	"math/rand"

	"repro/internal/client"
)

// Oracle is the acked-write ground truth: every Set acknowledged by the
// cluster is recorded, and Check later re-reads the cluster. A cache may
// lose keys (evictions, crashes without snapshots), so absence is only
// degradation — but a key that is present MUST carry the acked bytes;
// any mismatch is corruption and fails the scenario.
type Oracle struct {
	acked map[string][]byte
	rng   *rand.Rand
}

// NewOracle returns an oracle drawing value sizes from the seeded rng.
func NewOracle(seed int64) *Oracle {
	return &Oracle{
		acked: make(map[string][]byte),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// value derives a deterministic payload for key of the given size.
func (o *Oracle) value(key string, size int) []byte {
	v := make([]byte, size)
	vr := rand.New(rand.NewSource(int64(len(key)) + int64(key[len(key)-1])*7919 + o.seedOf(key)))
	vr.Read(v)
	return v
}

func (o *Oracle) seedOf(key string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h = (h ^ int64(key[i])) * 1099511628211
	}
	return h
}

// Populate writes n keys with the given prefix through cl, sizes in
// [minSize, maxSize], recording each acknowledged write.
func (o *Oracle) Populate(cl *client.Cluster, prefix string, n, minSize, maxSize int) error {
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%s-%06d", prefix, i)
		size := minSize
		if maxSize > minSize {
			size += o.rng.Intn(maxSize - minSize)
		}
		val := o.value(key, size)
		if err := cl.Set(key, val); err != nil {
			return fmt.Errorf("populate %s: %w", key, err)
		}
		o.acked[key] = val
	}
	return nil
}

// Acked returns the number of acknowledged writes on record.
func (o *Oracle) Acked() int { return len(o.acked) }

// Keys returns every acked key (iteration order unspecified).
func (o *Oracle) Keys() []string {
	keys := make([]string, 0, len(o.acked))
	for k := range o.acked {
		keys = append(keys, k)
	}
	return keys
}

// CheckResult summarizes an integrity pass over the acked set.
type CheckResult struct {
	Checked    int
	Present    int
	Mismatched int
	Errors     int
}

// PresentFraction is the share of acked keys still served.
func (r CheckResult) PresentFraction() float64 {
	if r.Checked == 0 {
		return 0
	}
	return float64(r.Present) / float64(r.Checked)
}

// Check re-reads every acked key through cl and compares served bytes
// against the acked bytes.
func (o *Oracle) Check(cl *client.Cluster) CheckResult {
	var res CheckResult
	for key, want := range o.acked {
		res.Checked++
		got, hit, err := cl.Get(key)
		if err != nil {
			res.Errors++
			continue
		}
		if !hit {
			continue
		}
		res.Present++
		if string(got) != string(want) {
			res.Mismatched++
		}
	}
	return res
}

// CheckMembers runs Check against a freshly built client over members —
// the post-scale membership a repointed web tier would use.
func (o *Oracle) CheckMembers(members []string) (CheckResult, error) {
	cl, err := client.New(members)
	if err != nil {
		return CheckResult{}, err
	}
	defer cl.Close()
	return o.Check(cl), nil
}

// MustCheck is CheckMembers with scenario-failure semantics: any client
// construction error, read error, or value mismatch fails the scenario,
// and presence below minPresent fails it too.
func (o *Oracle) MustCheck(t *T, members []string, minPresent float64) CheckResult {
	res, err := o.CheckMembers(members)
	if err != nil {
		t.Fatalf("oracle check: %v", err)
	}
	t.Logf("oracle: %d/%d present (%.1f%%), %d mismatched, %d errors",
		res.Present, res.Checked, 100*res.PresentFraction(), res.Mismatched, res.Errors)
	if res.Mismatched > 0 {
		t.Fatalf("integrity violation: %d of %d served keys returned bytes that were never acked", res.Mismatched, res.Present)
	}
	if res.Errors > 0 {
		t.Fatalf("oracle check hit %d read errors", res.Errors)
	}
	if res.PresentFraction() < minPresent {
		t.Fatalf("presence %.3f below required %.3f (%d/%d keys)",
			res.PresentFraction(), minPresent, res.Present, res.Checked)
	}
	return res
}
