package e2eharness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/agent"
)

// WaitMemcachedReady polls addr with `version` round trips until the
// node answers or the timeout expires.
func WaitMemcachedReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err != nil {
			lastErr = err
			time.Sleep(50 * time.Millisecond)
			continue
		}
		_ = conn.SetDeadline(time.Now().Add(time.Second))
		_, _ = conn.Write([]byte("version\r\n"))
		line, err := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if err == nil && strings.HasPrefix(line, "VERSION") {
			return nil
		}
		lastErr = fmt.Errorf("version probe: %q, %v", line, err)
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("node %s not ready after %v: %w", addr, timeout, lastErr)
}

// FetchExpvars downloads /debug/vars from a node's -debug-addr.
func FetchExpvars(debugAddr string) (map[string]json.RawMessage, error) {
	cl := http.Client{Timeout: 2 * time.Second}
	resp, err := cl.Get("http://" + debugAddr + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/vars: %s", resp.Status)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return nil, err
	}
	return vars, nil
}

// MigrationCounters decodes the elmem_migration expvar from a node's
// debug address.
func MigrationCounters(debugAddr string) (agent.MigrationCounters, error) {
	var c agent.MigrationCounters
	vars, err := FetchExpvars(debugAddr)
	if err != nil {
		return c, err
	}
	raw, ok := vars["elmem_migration"]
	if !ok {
		return c, fmt.Errorf("%s: no elmem_migration expvar", debugAddr)
	}
	err = json.Unmarshal(raw, &c)
	return c, err
}

// PollUntil re-evaluates cond every 25ms until it holds or the timeout
// expires; it reports whether cond ever held.
func PollUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(25 * time.Millisecond)
	}
	return cond()
}

// Stats runs a raw `stats` round trip against a node's memcached port
// and returns the STAT pairs.
func Stats(addr string) (map[string]string, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("stats\r\n")); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	br := bufio.NewReader(conn)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "STAT" {
			out[fields[1]] = fields[2]
		}
	}
}

// RawGet fetches one key over a bare memcached connection, returning the
// value and whether it was a hit. A fresh connection per call keeps it
// independent of client-side routing — the probe reads exactly one node.
func RawGet(addr, key string) ([]byte, bool, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, false, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintf(conn, "get %s\r\n", key); err != nil {
		return nil, false, err
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, false, err
	}
	if strings.HasPrefix(line, "END") {
		return nil, false, nil
	}
	var rkey string
	var flags, size int
	if _, err := fmt.Sscanf(line, "VALUE %s %d %d", &rkey, &flags, &size); err != nil {
		return nil, false, fmt.Errorf("get %s: bad reply %q", key, line)
	}
	val := make([]byte, size+2)
	if _, err := readFull(br, val); err != nil {
		return nil, false, err
	}
	if _, err := br.ReadString('\n'); err != nil { // END
		return nil, false, err
	}
	return val[:size], true, nil
}

// RawSet stores one key over a bare memcached connection and returns
// the server's reply line ("STORED", "SERVER_ERROR ...", ...).
func RawSet(addr, key string, val []byte) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintf(conn, "set %s 0 0 %d\r\n", key, len(val)); err != nil {
		return "", err
	}
	if _, err := conn.Write(val); err != nil {
		return "", err
	}
	if _, err := conn.Write([]byte("\r\n")); err != nil {
		return "", err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readFull(br *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
