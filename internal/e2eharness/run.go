package e2eharness

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Scenario is one scripted operations drill over real processes.
type Scenario struct {
	Name     string
	Describe string
	Run      func(t *T)
}

// Result is one scenario's verdict.
type Result struct {
	Name     string
	Passed   bool
	Err      string
	Duration time.Duration
}

// MatchScenarios filters scenarios by a comma-separated list of
// case-insensitive substrings; an empty filter selects everything.
func MatchScenarios(all []Scenario, filter string) []Scenario {
	filter = strings.TrimSpace(filter)
	if filter == "" {
		return all
	}
	var pats []string
	for _, p := range strings.Split(filter, ",") {
		if p = strings.ToLower(strings.TrimSpace(p)); p != "" {
			pats = append(pats, p)
		}
	}
	if len(pats) == 0 {
		return all
	}
	var out []Scenario
	for _, sc := range all {
		name := strings.ToLower(sc.Name)
		for _, p := range pats {
			if strings.Contains(name, p) {
				out = append(out, sc)
				break
			}
		}
	}
	return out
}

// RunScenarios executes the scenarios sequentially, each with its own
// scratch and log directories under workdir and a deterministic seed
// derived from baseSeed and the scenario's position. It prints a
// per-scenario PASS/FAIL summary to out and returns the results.
func RunScenarios(out io.Writer, scenarios []Scenario, bins Binaries, workdir string, baseSeed int64) []Result {
	results := make([]Result, 0, len(scenarios))
	for i, sc := range scenarios {
		fmt.Fprintf(out, "=== RUN   %s — %s\n", sc.Name, sc.Describe)
		res := runOne(out, sc, bins, workdir, baseSeed+int64(i)*1000)
		results = append(results, res)
		if res.Passed {
			fmt.Fprintf(out, "--- PASS: %s (%.1fs)\n", sc.Name, res.Duration.Seconds())
		} else {
			fmt.Fprintf(out, "--- FAIL: %s (%.1fs)\n    %s\n    logs: %s\n",
				sc.Name, res.Duration.Seconds(), res.Err, filepath.Join(workdir, "logs", sc.Name))
		}
	}
	passed := 0
	for _, r := range results {
		if r.Passed {
			passed++
		}
	}
	fmt.Fprintf(out, "SUMMARY: %d passed, %d failed (of %d)\n", passed, len(results)-passed, len(results))
	return results
}

func runOne(out io.Writer, sc Scenario, bins Binaries, workdir string, seed int64) (res Result) {
	start := time.Now()
	res.Name = sc.Name

	scratch := filepath.Join(workdir, "scratch", sc.Name)
	logDir := filepath.Join(workdir, "logs", sc.Name)
	for _, d := range []string{scratch, logDir} {
		_ = os.RemoveAll(d)
		if err := os.MkdirAll(d, 0o755); err != nil {
			res.Err = err.Error()
			res.Duration = time.Since(start)
			return res
		}
	}
	logf, err := os.Create(filepath.Join(logDir, "harness.log"))
	if err != nil {
		res.Err = err.Error()
		res.Duration = time.Since(start)
		return res
	}
	defer logf.Close()

	t := &T{
		Name:    sc.Name,
		Seed:    seed,
		WorkDir: scratch,
		LogDir:  logDir,
		Bins:    bins,
		log:     log.New(io.MultiWriter(logf, prefixWriter{out, "    | "}), "", log.Ltime|log.Lmicroseconds),
	}
	defer t.teardown()
	defer func() {
		res.Duration = time.Since(start)
		if r := recover(); r != nil {
			if f, ok := r.(failure); ok {
				res.Err = f.msg
				return
			}
			panic(r)
		}
		res.Passed = res.Err == ""
	}()

	sc.Run(t)
	return res
}

// prefixWriter indents harness log lines under the scenario banner.
type prefixWriter struct {
	w      io.Writer
	prefix string
}

func (p prefixWriter) Write(b []byte) (int, error) {
	lines := strings.SplitAfter(string(b), "\n")
	for _, line := range lines {
		if line == "" {
			continue
		}
		if _, err := io.WriteString(p.w, p.prefix+line); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}
