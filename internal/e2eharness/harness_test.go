package e2eharness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/server"
)

func TestMatchScenarios(t *testing.T) {
	all := []Scenario{
		{Name: "node-crash-mid-migration"},
		{Name: "master-restart-resume"},
		{Name: "partition-heal"},
		{Name: "warm-restart-snapshot"},
	}
	cases := []struct {
		filter string
		want   []string
	}{
		{"", []string{"node-crash-mid-migration", "master-restart-resume", "partition-heal", "warm-restart-snapshot"}},
		{"crash", []string{"node-crash-mid-migration"}},
		{"RESTART", []string{"master-restart-resume", "warm-restart-snapshot"}},
		{"crash, partition", []string{"node-crash-mid-migration", "partition-heal"}},
		{"nope", nil},
		{" , ", []string{"node-crash-mid-migration", "master-restart-resume", "partition-heal", "warm-restart-snapshot"}},
	}
	for _, tc := range cases {
		got := MatchScenarios(all, tc.filter)
		names := make([]string, len(got))
		for i, sc := range got {
			names[i] = sc.Name
		}
		if strings.Join(names, "|") != strings.Join(tc.want, "|") {
			t.Errorf("filter %q: got %v, want %v", tc.filter, names, tc.want)
		}
	}
}

// TestProbesAgainstLiveServer exercises the wire probes against an
// in-process server so tier-1 covers them without spawning binaries.
func TestProbesAgainstLiveServer(t *testing.T) {
	c, err := cache.New(4 * cache.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.Listen("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := WaitMemcachedReady(s.Addr(), 2*time.Second); err != nil {
		t.Fatalf("ready probe: %v", err)
	}

	if reply, err := RawSet(s.Addr(), "probe", []byte("payload")); err != nil || reply != "STORED" {
		t.Fatalf("RawSet: %q, %v", reply, err)
	}
	got, hit, err := RawGet(s.Addr(), "probe")
	if err != nil || !hit || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("RawGet: %q hit=%v err=%v", got, hit, err)
	}
	if _, hit, err := RawGet(s.Addr(), "absent"); err != nil || hit {
		t.Fatalf("RawGet miss: hit=%v err=%v", hit, err)
	}

	stats, err := Stats(s.Addr())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats["curr_items"] != "1" {
		t.Fatalf("curr_items = %q, want 1", stats["curr_items"])
	}
}

func TestWaitMemcachedReadyTimesOut(t *testing.T) {
	start := time.Now()
	err := WaitMemcachedReady("127.0.0.1:1", 300*time.Millisecond)
	if err == nil {
		t.Fatal("probe of a dead port succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("timeout not honored: %v", time.Since(start))
	}
}

func TestOracleValuesDeterministic(t *testing.T) {
	a, b := NewOracle(7), NewOracle(7)
	va := a.value("some-key-001", 64)
	vb := b.value("some-key-001", 64)
	if !bytes.Equal(va, vb) {
		t.Fatal("oracle values for the same key diverge across instances")
	}
	if bytes.Equal(va, a.value("some-key-002", 64)) {
		t.Fatal("oracle values for different keys collide")
	}
}

func TestFreePortsDistinct(t *testing.T) {
	ports, err := FreePorts(9)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, p := range ports {
		if seen[p] {
			t.Fatalf("duplicate port %d in %v", p, ports)
		}
		seen[p] = true
	}
}

func TestSpawnCapturesOutput(t *testing.T) {
	dir := t.TempDir()
	p, err := Spawn(dir, "echo", "/bin/sh", "-c", "echo spawned-ok; exit 0")
	if err != nil {
		t.Fatal(err)
	}
	werr, ok := p.Wait(5 * time.Second)
	if !ok || werr != nil {
		t.Fatalf("wait: exited=%v err=%v", ok, werr)
	}
	if !strings.Contains(p.Output(), "spawned-ok") {
		t.Fatalf("captured output %q", p.Output())
	}
	if !p.Exited() {
		t.Fatal("Exited false after Wait")
	}

	failing, err := Spawn(dir, "fail", "/bin/sh", "-c", "exit 3")
	if err != nil {
		t.Fatal(err)
	}
	if werr, ok := failing.Wait(5 * time.Second); !ok || werr == nil {
		t.Fatalf("failing process: exited=%v err=%v", ok, werr)
	}
}

func TestPrefixWriter(t *testing.T) {
	var buf bytes.Buffer
	w := prefixWriter{&buf, "  | "}
	if _, err := w.Write([]byte("one\ntwo\n")); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "  | one\n  | two\n" {
		t.Fatalf("prefixed output %q", got)
	}
}
