package e2eharness

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/store"
	"repro/internal/workload"
)

// Scenarios returns the full scripted suite in run order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:     "node-crash-mid-migration",
			Describe: "SIGKILL a migration receiver mid-stream, restart it, rerun the scale-in to completion",
			Run:      scenarioNodeCrashMidMigration,
		},
		{
			Name:     "master-restart-resume",
			Describe: "SIGKILL the master mid-migration; the cluster keeps serving and a fresh master completes the operation",
			Run:      scenarioMasterRestartResume,
		},
		{
			Name:     "partition-heal",
			Describe: "partition a master->agent control link so the scale-in aborts unharmed, then heal and complete it",
			Run:      scenarioPartitionHeal,
		},
		{
			Name:     "clock-skew",
			Describe: "skewed node clocks distort III-C coldness scoring deterministically; migration still completes with integrity",
			Run:      scenarioClockSkew,
		},
		{
			Name:     "large-payload-sweep",
			Describe: "payload sizes from 1B to the slab ceiling round-trip, oversized values fail cleanly, and large values migrate",
			Run:      scenarioLargePayloadSweep,
		},
		{
			Name:     "warm-restart-snapshot",
			Describe: "SIGTERM snapshot + restart serves a hit-rate at least 2x a cold-start control",
			Run:      scenarioWarmRestartSnapshot,
		},
	}
}

// agentProxies interposes a faultnet proxy on every directed agent->agent
// link: node i's -peers entries point at proxies instead of the real
// agent ports, so the harness can throttle, partition, or delay the
// migration data plane between real processes. Returns per-node peers
// maps keyed by peer node name.
func agentProxies(t *T, netw *faultnet.Network, specs []NodeSpec) []map[string]string {
	peers := make([]map[string]string, len(specs))
	for i := range specs {
		peers[i] = make(map[string]string)
		for j := range specs {
			if i == j {
				continue
			}
			pr, err := faultnet.NewProxy(netw, specs[i].Name(), specs[j].Name(), specs[j].AgentAddr)
			if err != nil {
				t.Fatalf("proxy %s->%s: %v", specs[i].Name(), specs[j].Name(), err)
			}
			t.Cleanup(func() { _ = pr.Close() })
			peers[i][specs[j].Name()] = pr.Addr()
		}
	}
	return peers
}

// nodesArg renders the -nodes argument for elmem-master, mapping node
// names to the agent addresses the master should dial.
func nodesArg(specs []NodeSpec, agentAddr func(NodeSpec) string) string {
	parts := make([]string, len(specs))
	for i, sp := range specs {
		parts[i] = sp.Name() + "=" + agentAddr(sp)
	}
	return strings.Join(parts, ",")
}

// membersOf lists the cache addresses (== names) of specs.
func membersOf(specs []NodeSpec) []string {
	out := make([]string, len(specs))
	for i, sp := range specs {
		out[i] = sp.Addr
	}
	return out
}

// newClusterClient builds a client over members or fails the scenario.
func newClusterClient(t *T, members []string) *client.Cluster {
	cl, err := client.New(members)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// parseMembers extracts the post-scale membership from elmem-master
// output ("members=a,b" on success).
func parseMembers(t *T, masterOut string) []string {
	for _, line := range strings.Split(masterOut, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "members="); ok {
			return strings.Split(rest, ",")
		}
	}
	t.Fatalf("no members= line in master output:\n%s", masterOut)
	return nil
}

// runMaster spawns an elmem-master action and waits for it, returning
// its wait error (nil = exit 0) and captured output.
func runMaster(t *T, procName string, timeout time.Duration, args ...string) (error, string) {
	p := t.Spawn(procName, t.Bins.Master, args...)
	err, ok := p.Wait(timeout)
	if !ok {
		t.Fatalf("%s did not exit within %v", procName, timeout)
	}
	return err, p.Output()
}

func scenarioNodeCrashMidMigration(t *T) {
	specs := t.NewNodeSpecs(3)
	netw := faultnet.New(t.Seed)
	peers := agentProxies(t, netw, specs)
	// Throttle the data plane so the stream is killable mid-flight.
	for i := range specs {
		for j := range specs {
			if i != j {
				netw.SetLinkRule(specs[i].Name(), specs[j].Name(), faultnet.Rule{ThrottleBPS: 128 << 10})
			}
		}
	}
	procs := make([]*Proc, len(specs))
	for i, sp := range specs {
		procs[i] = t.StartNode(fmt.Sprintf("node%c", 'A'+i), sp, peers[i], "-memory-mb", "64")
	}

	oracle := NewOracle(t.Seed)
	cl := newClusterClient(t, membersOf(specs))
	if err := oracle.Populate(cl, "crash", 4000, 64, 512); err != nil {
		t.Fatalf("populate: %v", err)
	}
	t.Logf("populated %d acked keys", oracle.Acked())

	base := make([]int64, len(specs))
	for i, sp := range specs {
		c, err := MigrationCounters(sp.DebugAddr)
		if err != nil {
			t.Fatalf("counters %s: %v", sp.Name(), err)
		}
		base[i] = c.PairsImported
	}

	master := t.Spawn("master-run1", t.Bins.Master,
		"-nodes", nodesArg(specs, func(sp NodeSpec) string { return sp.AgentAddr }),
		"-scale-in", "1", "-timeout", "30s")

	// Find a receiver with imports flowing and crash it mid-stream.
	victim := -1
	if !PollUntil(20*time.Second, func() bool {
		for i, sp := range specs {
			c, err := MigrationCounters(sp.DebugAddr)
			if err == nil && c.PairsImported > base[i] {
				victim = i
				return true
			}
		}
		return false
	}) {
		t.Fatalf("no node imported any pairs within 20s of the scale-in\nmaster:\n%s", master.Output())
	}
	t.Logf("killing migration receiver %s mid-import", specs[victim].Name())
	procs[victim].Kill()

	if err, ok := master.Wait(60 * time.Second); !ok {
		t.Fatalf("master run 1 wedged after receiver crash")
	} else {
		t.Logf("master run 1 after crash: err=%v", err)
	}

	// Survivors must still serve.
	for i, sp := range specs {
		if i == victim {
			continue
		}
		if err := WaitMemcachedReady(sp.Addr, 5*time.Second); err != nil {
			t.Fatalf("survivor %s: %v", sp.Name(), err)
		}
	}

	t.Logf("restarting crashed node %s", specs[victim].Name())
	procs[victim] = t.StartNode(fmt.Sprintf("node%c-restarted", 'A'+victim), specs[victim], peers[victim], "-memory-mb", "64")

	// Unthrottle so the rerun completes promptly.
	for i := range specs {
		for j := range specs {
			if i != j {
				netw.SetLinkRule(specs[i].Name(), specs[j].Name(), faultnet.Rule{})
			}
		}
	}
	err, out := runMaster(t, "master-run2", 60*time.Second,
		"-nodes", nodesArg(specs, func(sp NodeSpec) string { return sp.AgentAddr }),
		"-scale-in", "1", "-timeout", "45s")
	if err != nil {
		t.Fatalf("master rerun after restart failed: %v\n%s", err, out)
	}
	members := parseMembers(t, out)
	if len(members) != 2 {
		t.Fatalf("rerun membership %v, want 2 members", members)
	}
	// The crashed receiver lost its resident third; everything still
	// served must carry acked bytes, and well over the surviving share
	// must be present.
	oracle.MustCheck(t, members, 0.5)

	sent := int64(0)
	for _, m := range members {
		for _, sp := range specs {
			if sp.Name() == m {
				c, err := MigrationCounters(sp.DebugAddr)
				if err != nil {
					t.Fatalf("counters %s: %v", m, err)
				}
				sent += c.PairsSent + c.PairsImported
			}
		}
	}
	if sent == 0 {
		t.Fatalf("no migration traffic recorded on surviving members")
	}
}

func scenarioMasterRestartResume(t *T) {
	specs := t.NewNodeSpecs(3)
	netw := faultnet.New(t.Seed)
	peers := agentProxies(t, netw, specs)
	for i := range specs {
		for j := range specs {
			if i != j {
				netw.SetLinkRule(specs[i].Name(), specs[j].Name(), faultnet.Rule{ThrottleBPS: 128 << 10})
			}
		}
	}
	for i, sp := range specs {
		t.StartNode(fmt.Sprintf("node%c", 'A'+i), sp, peers[i], "-memory-mb", "64")
	}

	oracle := NewOracle(t.Seed)
	cl := newClusterClient(t, membersOf(specs))
	if err := oracle.Populate(cl, "mres", 4000, 64, 512); err != nil {
		t.Fatalf("populate: %v", err)
	}

	master := t.Spawn("master-run1", t.Bins.Master,
		"-nodes", nodesArg(specs, func(sp NodeSpec) string { return sp.AgentAddr }),
		"-scale-in", "1", "-timeout", "30s")

	if !PollUntil(20*time.Second, func() bool {
		for _, sp := range specs {
			if c, err := MigrationCounters(sp.DebugAddr); err == nil && c.PairsSent > 0 {
				return true
			}
		}
		return false
	}) {
		t.Fatalf("no pairs sent within 20s of the scale-in\nmaster:\n%s", master.Output())
	}
	t.Logf("killing master mid-migration")
	master.Kill()

	// Every node survives the master's death, and the old membership
	// still serves the full acked set: the data phase copies, it does not
	// delete, and the membership flip never ran.
	for _, sp := range specs {
		if err := WaitMemcachedReady(sp.Addr, 5*time.Second); err != nil {
			t.Fatalf("node %s after master crash: %v", sp.Name(), err)
		}
	}
	oracle.MustCheck(t, membersOf(specs), 0.99)

	for i := range specs {
		for j := range specs {
			if i != j {
				netw.SetLinkRule(specs[i].Name(), specs[j].Name(), faultnet.Rule{})
			}
		}
	}
	err, out := runMaster(t, "master-run2", 60*time.Second,
		"-nodes", nodesArg(specs, func(sp NodeSpec) string { return sp.AgentAddr }),
		"-scale-in", "1", "-timeout", "45s")
	if err != nil {
		t.Fatalf("fresh master could not complete the interrupted scale-in: %v\n%s", err, out)
	}
	members := parseMembers(t, out)
	if len(members) != 2 {
		t.Fatalf("membership after resume %v, want 2 members", members)
	}
	oracle.MustCheck(t, members, 0.6)
}

func scenarioPartitionHeal(t *T) {
	specs := t.NewNodeSpecs(3)
	netw := faultnet.New(t.Seed)
	// Control-plane proxies: the master reaches each agent through a
	// faultnet hop on the master->node link. The data plane is direct.
	ctrl := make(map[string]string, len(specs))
	for _, sp := range specs {
		pr, err := faultnet.NewProxy(netw, "master", sp.Name(), sp.AgentAddr)
		if err != nil {
			t.Fatalf("control proxy: %v", err)
		}
		t.Cleanup(func() { _ = pr.Close() })
		ctrl[sp.Name()] = pr.Addr()
	}
	for i, sp := range specs {
		peersDirect := make(map[string]string)
		for j, other := range specs {
			if i != j {
				peersDirect[other.Name()] = other.AgentAddr
			}
		}
		t.StartNode(fmt.Sprintf("node%c", 'A'+i), sp, peersDirect, "-memory-mb", "64")
	}

	oracle := NewOracle(t.Seed)
	cl := newClusterClient(t, membersOf(specs))
	if err := oracle.Populate(cl, "part", 3000, 64, 512); err != nil {
		t.Fatalf("populate: %v", err)
	}

	cut := specs[1].Name()
	netw.Partition("master", cut)
	t.Logf("partitioned master->%s", cut)

	err, out := runMaster(t, "master-partitioned", 60*time.Second,
		"-nodes", nodesArg(specs, func(sp NodeSpec) string { return ctrl[sp.Name()] }),
		"-scale-in", "1", "-timeout", "20s")
	if err == nil {
		t.Fatalf("scale-in succeeded across a partitioned control link:\n%s", out)
	}
	t.Logf("partitioned master failed as expected: %v", err)

	// Abort safety: the aborted operation moved nothing and the full
	// membership still serves the complete acked set.
	for _, sp := range specs {
		c, err := MigrationCounters(sp.DebugAddr)
		if err != nil {
			t.Fatalf("counters %s: %v", sp.Name(), err)
		}
		if c.BytesMoved != 0 {
			t.Fatalf("aborted scale-in moved %d bytes via %s", c.BytesMoved, sp.Name())
		}
	}
	oracle.MustCheck(t, membersOf(specs), 0.99)

	netw.Heal("master", cut)
	t.Logf("healed master->%s", cut)
	err, out = runMaster(t, "master-healed", 90*time.Second,
		"-nodes", nodesArg(specs, func(sp NodeSpec) string { return ctrl[sp.Name()] }),
		"-scale-in", "1", "-timeout", "60s")
	if err != nil {
		t.Fatalf("scale-in after heal failed: %v\n%s", err, out)
	}
	members := parseMembers(t, out)
	if len(members) != 2 {
		t.Fatalf("membership after heal %v, want 2 members", members)
	}
	oracle.MustCheck(t, members, 0.6)
}

func scenarioClockSkew(t *T) {
	specs := t.NewNodeSpecs(3)
	skews := []string{"-90m", "0s", "90m"}
	for i, sp := range specs {
		peersDirect := make(map[string]string)
		for j, other := range specs {
			if i != j {
				peersDirect[other.Name()] = other.AgentAddr
			}
		}
		t.StartNode(fmt.Sprintf("node%c", 'A'+i), sp, peersDirect,
			"-memory-mb", "64", "-clock-skew", skews[i])
	}

	oracle := NewOracle(t.Seed)
	cl := newClusterClient(t, membersOf(specs))
	if err := oracle.Populate(cl, "skew", 3000, 64, 512); err != nil {
		t.Fatalf("populate: %v", err)
	}

	// III-C scores nodes by MRU recency reported in each node's own
	// wall clock. The node running 90 minutes slow reports every access
	// as stale, so it must be scored coldest and retired — a
	// deterministic, observable consequence of clock skew.
	err, out := runMaster(t, "master-scale-in", 60*time.Second,
		"-nodes", nodesArg(specs, func(sp NodeSpec) string { return sp.AgentAddr }),
		"-scale-in", "1", "-timeout", "45s")
	if err != nil {
		t.Fatalf("scale-in across skewed clocks failed: %v\n%s", err, out)
	}
	wantRetired := "retired=" + specs[0].Name()
	if !strings.Contains(out, wantRetired) {
		t.Fatalf("master retired the wrong node: want %q in\n%s", wantRetired, out)
	}
	t.Logf("slow-clock node %s scored coldest and was retired", specs[0].Name())

	members := parseMembers(t, out)
	if len(members) != 2 {
		t.Fatalf("membership %v, want 2 members", members)
	}
	oracle.MustCheck(t, members, 0.5)
}

func scenarioLargePayloadSweep(t *T) {
	specs := t.NewNodeSpecs(2)
	for i, sp := range specs {
		peersDirect := make(map[string]string)
		for j, other := range specs {
			if i != j {
				peersDirect[other.Name()] = other.AgentAddr
			}
		}
		t.StartNode(fmt.Sprintf("node%c", 'A'+i), sp, peersDirect, "-memory-mb", "128")
	}
	addr := specs[0].Addr

	// The slab ceiling: one page minus the chunk header and the key.
	const key = "sweep-payload"
	maxVal := cache.PageSize - cache.ItemOverhead - len(key)
	sizes := []int{1, 1 << 10, 16 << 10, 100_000, 512 << 10, maxVal}
	rng := rand.New(rand.NewSource(t.Seed))
	for _, size := range sizes {
		val := make([]byte, size)
		rng.Read(val)
		if reply, err := RawSet(addr, key, val); err != nil || reply != "STORED" {
			t.Fatalf("set %dB: reply=%q err=%v", size, reply, err)
		}
		got, hit, err := RawGet(addr, key)
		if err != nil || !hit {
			t.Fatalf("get %dB: hit=%v err=%v", size, hit, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("%dB payload corrupted in round trip (got %dB)", size, len(got))
		}
		t.Logf("%d byte payload round-tripped", size)
	}

	// One past the ceiling: the store rejects it with SERVER_ERROR and
	// the connection keeps serving.
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	over := make([]byte, maxVal+1)
	if _, err := fmt.Fprintf(conn, "set %s 0 0 %d\r\n", key, len(over)); err != nil {
		t.Fatalf("oversized set: %v", err)
	}
	if _, err := conn.Write(append(over, '\r', '\n')); err != nil {
		t.Fatalf("oversized set body: %v", err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "SERVER_ERROR") {
		t.Fatalf("oversized set: want SERVER_ERROR, got %q err=%v", line, err)
	}
	if _, err := conn.Write([]byte("version\r\n")); err != nil {
		t.Fatalf("post-error write: %v", err)
	}
	if line, err = br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("connection dead after oversized set: %q err=%v", line, err)
	}
	t.Logf("oversized value rejected cleanly, connection kept serving")

	// Large values must also survive migration.
	oracle := NewOracle(t.Seed)
	cl := newClusterClient(t, membersOf(specs))
	if err := oracle.Populate(cl, "big", 40, 256<<10, 256<<10+1); err != nil {
		t.Fatalf("populate large: %v", err)
	}
	err2, out := runMaster(t, "master-scale-in", 90*time.Second,
		"-nodes", nodesArg(specs, func(sp NodeSpec) string { return sp.AgentAddr }),
		"-scale-in", "1", "-timeout", "60s")
	if err2 != nil {
		t.Fatalf("scale-in with large values failed: %v\n%s", err2, out)
	}
	members := parseMembers(t, out)
	if len(members) != 1 {
		t.Fatalf("membership %v, want 1 member", members)
	}
	oracle.MustCheck(t, members, 0.9)
}

func scenarioWarmRestartSnapshot(t *T) {
	specs := t.NewNodeSpecs(2)
	warm, cold := specs[0], specs[1]
	snapDir := t.WorkDir + "/snap-warm"

	const (
		datasetKeys = 20_000
		zipfS       = 1.1
		loadSeed    = 42
	)
	node := t.StartNode("nodeWarm", warm, nil,
		"-memory-mb", "64", "-snapshot-dir", snapDir, "-drain", "3s")

	// A real loadgen process populates the node exactly as the paper's
	// web tier would: Zipf multi-gets with DB write-back on miss.
	lg := t.Spawn("loadgen", t.Bins.Loadgen,
		"-members", warm.Addr, "-rate", "400", "-duration", "6s",
		"-keys", fmt.Sprint(datasetKeys), "-kv", "10",
		"-zipf", fmt.Sprint(zipfS), "-seed", fmt.Sprint(loadSeed),
		"-db-capacity", "50000", "-db-base", "100us")
	if err, ok := lg.Wait(60 * time.Second); !ok || err != nil {
		t.Fatalf("loadgen: exited=%v err=%v\n%s", ok, err, lg.Output())
	}

	stats, err := Stats(warm.Addr)
	if err != nil {
		t.Fatalf("stats before snapshot: %v", err)
	}
	t.Logf("pre-shutdown curr_items=%s", stats["curr_items"])

	// The tentpole counters must be live on the debug port.
	vars, err := FetchExpvars(warm.DebugAddr)
	if err != nil {
		t.Fatalf("expvars: %v", err)
	}
	for _, name := range []string{"elmem_migration", "elmem_gc"} {
		if _, ok := vars[name]; !ok {
			t.Fatalf("expvar %s not published on %s", name, warm.DebugAddr)
		}
	}

	t.Logf("SIGTERM -> drain -> snapshot")
	if err := node.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sigterm: %v", err)
	}
	if err, ok := node.Wait(20 * time.Second); !ok || err != nil {
		t.Fatalf("node shutdown: exited=%v err=%v\n%s", ok, err, node.Output())
	}
	if _, err := Stats(warm.Addr); err == nil {
		t.Fatalf("node still serving after SIGTERM exit")
	}

	t.Logf("restarting from snapshot")
	node = t.StartNode("nodeWarm-restarted", warm, nil,
		"-memory-mb", "64", "-snapshot-dir", snapDir, "-drain", "3s")
	if !strings.Contains(node.Output(), "warm restart: restored") {
		// The restore log line may land shortly after the port opens.
		if !PollUntil(3*time.Second, func() bool {
			return strings.Contains(node.Output(), "warm restart: restored")
		}) {
			t.Fatalf("restarted node did not log a snapshot restore:\n%s", node.Output())
		}
	}

	// Cold-start control: an identically configured node that never saw
	// the workload.
	t.StartNode("nodeCold", cold, nil, "-memory-mb", "64")

	// Probe hit-rate with fresh draws from the same Zipf popularity the
	// loadgen used, validating hit bytes against the loadgen's dataset —
	// the acked oracle for write-back traffic.
	dataset, err := store.NewDataset(datasetKeys, store.WithSizeBounds(1, 1024))
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	zipf, err := workload.NewZipf(rand.New(rand.NewSource(loadSeed)), zipfS, datasetKeys)
	if err != nil {
		t.Fatalf("zipf: %v", err)
	}
	const probes = 2000
	hitRate := func(addr string) float64 {
		hits := 0
		for i := 0; i < probes; i++ {
			key := workload.KeyName(zipf.Next())
			got, hit, err := RawGet(addr, key)
			if err != nil {
				t.Fatalf("probe get %s on %s: %v", key, addr, err)
			}
			if !hit {
				continue
			}
			hits++
			want, err := dataset.Value(key)
			if err != nil {
				t.Fatalf("dataset value %s: %v", key, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("warm-restarted value for %s does not match the dataset oracle", key)
			}
		}
		return float64(hits) / probes
	}
	warmRate := hitRate(warm.Addr)
	coldRate := hitRate(cold.Addr)
	t.Logf("EXPERIMENT warm_restart_hitrate warm=%.3f cold=%.3f ratio=%s",
		warmRate, coldRate, ratioString(warmRate, coldRate))

	if warmRate < 0.2 {
		t.Fatalf("warm hit-rate %.3f too low for a restored MRU set", warmRate)
	}
	if warmRate < 2*coldRate {
		t.Fatalf("warm hit-rate %.3f not >= 2x cold control %.3f", warmRate, coldRate)
	}
}

func ratioString(warm, cold float64) string {
	if cold == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", warm/cold)
}
