// Package e2eharness drives real elmem binaries — elmem-node,
// elmem-master, elmem-loadgen — as separate processes, the way an
// operator runs them: spawn, probe for readiness on the memcached port,
// inject seeded failures (SIGKILL, restarts, faultnet proxies between
// real sockets), and assert on live expvar counters plus post-scenario
// key/value integrity against an acked-write oracle. Every in-process
// chaos test so far trusted the Go runtime to share memory between
// "nodes"; this package is the tier where nothing is shared but the
// wire.
package e2eharness

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// Proc supervises one spawned binary. Stdout and stderr are captured to
// a log file under the scenario's log directory so CI can upload them as
// artifacts when a scenario fails.
type Proc struct {
	Name    string
	LogPath string

	cmd  *exec.Cmd
	logf *os.File

	mu     sync.Mutex
	waited bool
	werr   error
	done   chan struct{}
}

// Spawn starts bin with args, capturing combined output to
// logDir/<name>.log. The caller owns the process: Stop/Kill/Wait it.
func Spawn(logDir, name, bin string, args ...string) (*Proc, error) {
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		return nil, err
	}
	logPath := filepath.Join(logDir, name+".log")
	logf, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	p := &Proc{Name: name, LogPath: logPath, cmd: cmd, logf: logf, done: make(chan struct{})}
	go func() {
		err := cmd.Wait()
		p.mu.Lock()
		p.waited = true
		p.werr = err
		p.mu.Unlock()
		logf.Close()
		close(p.done)
	}()
	return p, nil
}

// Done is closed when the process has exited.
func (p *Proc) Done() <-chan struct{} { return p.done }

// Exited reports whether the process has already terminated.
func (p *Proc) Exited() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Signal delivers sig (e.g. syscall.SIGTERM) to the process.
func (p *Proc) Signal(sig os.Signal) error {
	return p.cmd.Process.Signal(sig)
}

// Kill delivers SIGKILL — the crash every restart scenario begins with —
// and waits for the process to be reaped.
func (p *Proc) Kill() {
	_ = p.cmd.Process.Signal(syscall.SIGKILL)
	<-p.done
}

// Wait blocks until exit or timeout. It returns the process's wait
// error (nil for exit status 0) and whether it exited in time.
func (p *Proc) Wait(timeout time.Duration) (error, bool) {
	select {
	case <-p.done:
	case <-time.After(timeout):
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.werr, true
}

// Output returns the captured combined output so far.
func (p *Proc) Output() string {
	b, err := os.ReadFile(p.LogPath)
	if err != nil {
		return ""
	}
	return string(b)
}
