package e2eharness

import (
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

// Binaries holds the paths of the freshly built elmem binaries.
type Binaries struct {
	Node    string
	Master  string
	Loadgen string
}

// BuildBinaries compiles elmem-node, elmem-master, and elmem-loadgen
// from the enclosing module into dir/bin. Building once per run (not per
// scenario) keeps the suite honest — every scenario exercises the same
// artifacts an operator would deploy.
func BuildBinaries(dir string) (Binaries, error) {
	root, err := moduleRoot()
	if err != nil {
		return Binaries{}, err
	}
	binDir := filepath.Join(dir, "bin")
	if err := os.MkdirAll(binDir, 0o755); err != nil {
		return Binaries{}, err
	}
	cmd := exec.Command("go", "build", "-o", binDir,
		"./cmd/elmem-node", "./cmd/elmem-master", "./cmd/elmem-loadgen")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return Binaries{}, fmt.Errorf("go build: %w\n%s", err, out)
	}
	return Binaries{
		Node:    filepath.Join(binDir, "elmem-node"),
		Master:  filepath.Join(binDir, "elmem-master"),
		Loadgen: filepath.Join(binDir, "elmem-loadgen"),
	}, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("e2eharness: no go.mod above working directory")
		}
		dir = parent
	}
}

// FreePorts reserves n distinct TCP ports by binding and releasing them.
// The window between release and the spawned binary's bind is a benign
// race on a quiet test host.
func FreePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// failure is the sentinel T.Fatalf panics with; the runner recovers it.
type failure struct{ msg string }

// T is the per-scenario context handed to a scenario's Run: seeded
// randomness, a scratch directory, a process registry that is torn down
// when the scenario ends, and Fatalf/Logf in the spirit of testing.T.
type T struct {
	Name    string
	Seed    int64
	WorkDir string // scenario scratch space (snapshot dirs, etc.)
	LogDir  string // captured process logs
	Bins    Binaries

	log      *log.Logger
	procs    []*Proc
	cleanups []func()
}

// Logf records a harness-side progress line into the scenario log.
func (t *T) Logf(format string, args ...any) {
	t.log.Printf(format, args...)
}

// Fatalf fails the scenario immediately.
func (t *T) Fatalf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	t.log.Printf("FATAL: %s", msg)
	panic(failure{msg: msg})
}

// Spawn starts a supervised process whose output lands in the scenario's
// log directory; it is SIGKILLed at scenario teardown if still running.
func (t *T) Spawn(name, bin string, args ...string) *Proc {
	t.Logf("spawn %s: %s %v", name, filepath.Base(bin), args)
	p, err := Spawn(t.LogDir, name, bin, args...)
	if err != nil {
		t.Fatalf("spawn %s: %v", name, err)
	}
	t.procs = append(t.procs, p)
	return p
}

// Cleanup registers fn to run at scenario teardown, after processes are
// killed, in reverse registration order.
func (t *T) Cleanup(fn func()) {
	t.cleanups = append(t.cleanups, fn)
}

// teardown reaps every process and runs cleanups.
func (t *T) teardown() {
	for _, p := range t.procs {
		if !p.Exited() {
			p.Kill()
		}
	}
	for i := len(t.cleanups) - 1; i >= 0; i-- {
		t.cleanups[i]()
	}
}

// NodeSpec is one elmem-node's address assignment. The node name is its
// cache address — the convention the client ring and the migration hash
// split both rely on.
type NodeSpec struct {
	Addr      string // memcached port; also the node name
	AgentAddr string
	DebugAddr string
}

// Name returns the node's name under the name==address convention.
func (n NodeSpec) Name() string { return n.Addr }

// NewNodeSpecs allocates address triples for n nodes.
func (t *T) NewNodeSpecs(n int) []NodeSpec {
	ports, err := FreePorts(3 * n)
	if err != nil {
		t.Fatalf("allocate ports: %v", err)
	}
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{
			Addr:      fmt.Sprintf("127.0.0.1:%d", ports[3*i]),
			AgentAddr: fmt.Sprintf("127.0.0.1:%d", ports[3*i+1]),
			DebugAddr: fmt.Sprintf("127.0.0.1:%d", ports[3*i+2]),
		}
	}
	return specs
}

// StartNode spawns an elmem-node for spec and waits until it serves.
// peers maps peer node names to the agent addresses this node should
// dial (harness proxies go here); extra appends raw flags.
func (t *T) StartNode(procName string, spec NodeSpec, peers map[string]string, extra ...string) *Proc {
	args := []string{
		"-addr", spec.Addr,
		"-agent-addr", spec.AgentAddr,
		"-debug-addr", spec.DebugAddr,
		"-crawl", "1s",
	}
	if len(peers) > 0 {
		var entries []string
		for name, addr := range peers {
			entries = append(entries, name+"="+addr)
		}
		args = append(args, "-peers", joinComma(entries))
	}
	args = append(args, extra...)
	p := t.Spawn(procName, t.Bins.Node, args...)
	if err := WaitMemcachedReady(spec.Addr, 10*time.Second); err != nil {
		t.Fatalf("%s: %v\n--- log ---\n%s", procName, err, p.Output())
	}
	return p
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}
