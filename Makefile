GO ?= go
SEEDS ?= 10
FUZZTIME ?= 10s
E2E_DIR ?= /tmp/elmem-e2e
SCENARIOS ?=

.PHONY: build test race vet bench bench-hot bench-migrate bench-skew bench-serve bench-gc bench-tenant allocs chaos fuzz e2e examples check

## build: compile every package
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the concurrency stress tests under the race detector — the
## data plane (cache/server/agentrpc) and the control plane (taskgroup/
## core/agent/cluster), whose migration phases fan out across goroutines
race:
	$(GO) test -race ./internal/cache/... ./internal/server/... \
		./internal/taskgroup/... ./internal/core/... ./internal/agent/... \
		./internal/cluster/... ./internal/faultnet/... ./internal/agentrpc/... \
		./internal/hotkey/... ./internal/client/...

## vet: run go vet across the module
vet:
	$(GO) vet ./...

## bench: run the lock-striping and server throughput benchmarks
## (single-lock vs sharded sub-benchmarks) plus the paper-figure benches
bench: bench-migrate
	$(GO) test -run '^$$' -bench 'Parallel|Multi|ServerThroughput' -benchmem -cpu 4 ./internal/cache/ ./internal/server/

## bench-migrate: the migration data-plane comparison — JSON stop-and-wait
## vs binary pipelined streaming, with and without 5ms injected RTT; the
## regression bar is ≥3× pairs/s for the binary plane at 5ms
bench-migrate:
	$(GO) test -run '^$$' -bench MigrateDataPlane -benchtime 1s ./internal/agentrpc/

## bench-skew: the hot-key replication load-spread experiment — a 4-node
## in-process cluster under adversarial Zipf θ=1.2 and flash-crowd reads;
## the regression bar is a ≥2× reduction in max-node/mean-node op ratio
## with replication on (see EXPERIMENTS.md)
bench-skew:
	$(GO) run ./cmd/elmem-bench -experiment skew

## bench-serve: the serve-through scaling experiment — concurrent Zipf
## read-through traffic (miss → simulated backing store → fill) driven
## across a live ScaleIn+ScaleOut, plain fills vs lease-protected; the
## regression bar is a measurably lower db-loads count with leases on and
## bounded p99 through both handovers (see EXPERIMENTS.md)
bench-serve:
	$(GO) run ./cmd/elmem-bench -experiment serve

## bench-gc: the arena-vs-pointer GC cost experiment — both engines loaded
## to 2M resident items, then an identical seeded get/set mix with forced
## collections; the regression bar is a ≥5× reduction in GC CPU fraction
## (or total pause) for the arena engine at equal residency, results in
## BENCH_gc.json (see EXPERIMENTS.md)
bench-gc:
	$(GO) run ./cmd/elmem-bench -experiment gc

## bench-tenant: the multi-tenant memory arbitration experiment — a
## noisy-neighbor tenant mix run unpartitioned, statically split, and
## under the MRC arbiter; the regression bars are a ≥15% aggregate
## hit-rate gain for arbitration over the static even split and the
## reserved-floor tenant within 5% of its isolated baseline, results in
## BENCH_tenant.json (see EXPERIMENTS.md)
bench-tenant:
	$(GO) run ./cmd/elmem-bench -experiment tenant

## bench-hot: hot-path benchmarks — in-process parse/handle/write cost
## (allocs/op must read 0) and loopback pipelining at depth 1/8/64
bench-hot:
	$(GO) test -run '^$$' -bench 'HotPath|ServerPipelined' -benchmem ./internal/server/

## allocs: the zero-allocation regression gate for the data-path hot path
allocs:
	$(GO) test -run TestHotPathAllocs -count 1 -v ./internal/server/

## chaos: the deterministic fault-injection sweep — SEEDS seeds, each run
## twice under faults plus once fault-free, checking the five migration
## invariants and schedule reproducibility; a failing seed replays with
## `go run ./cmd/elmem-chaos -seed <n>`
chaos:
	$(GO) run ./cmd/elmem-chaos -seeds $(SEEDS)

## fuzz: time-boxed native fuzzing of the memcached protocol parser
fuzz:
	$(GO) test -fuzz FuzzParser -fuzztime $(FUZZTIME) ./internal/memproto/

## e2e: the process-level end-to-end suite — real elmem-node/-master/
## -loadgen binaries driven through scripted failure scenarios (crash-
## restart mid-migration, master restart, partitions, clock skew, payload
## sweeps, warm-restart snapshots). Filter with SCENARIOS=crash,partition;
## process logs land under $(E2E_DIR)/logs/<scenario>/
e2e:
	$(GO) run ./cmd/elmem-e2e -workdir $(E2E_DIR) -scenarios '$(SCENARIOS)'

## examples: build every example program and run the two self-checking
## ones (quickstart, fusecache-demo) to completion
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fusecache-demo

## check: everything the CI gate runs
check: build vet test race allocs chaos fuzz examples e2e
