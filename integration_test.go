// Full-stack integration: the paper's deployment on real localhost TCP —
// load generator → web tier → consistent-hashing client → cache nodes,
// misses to the simulated database — with an ElMem scale-in executed
// mid-run. This is the closest in-repo analog of the paper's testbed run.
package repro

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/loadgen"
	"repro/internal/store"
	"repro/internal/webtier"
	"repro/internal/workload"
)

func TestFullStackScaleInUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack run takes a few seconds")
	}
	box, err := cluster.StartLocal(cluster.Config{
		Nodes:      4,
		NodeMemory: 4 * cache.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = box.Close() }()

	const keys = 20_000
	dataset, err := store.NewDataset(keys, store.WithSizeBounds(1, 128))
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.NewDB(dataset, store.LatencyModel{
		Base:     200 * time.Microsecond,
		Capacity: 100_000, // the DB is not the bottleneck in this test
		Max:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler, err := webtier.New(box.Client(), db)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the tier through the real request path.
	warm, err := loadgen.Run(context.Background(), loadgen.Config{
		Duration:     2 * time.Second,
		PeakRate:     400,
		KVPerRequest: 10,
		Keys:         keys,
		Seed:         1,
	}, loadgen.HandlerFunc(func(ks []string) (time.Duration, int, int, error) {
		res, err := handler.Handle(ks)
		return res.RT, res.Hits, res.Misses, err
	}))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Sent == 0 || warm.Errors != 0 {
		t.Fatalf("warmup: sent=%d errors=%d", warm.Sent, warm.Errors)
	}

	// Drive load and scale in mid-run.
	var inFlightErrs atomic.Uint64
	done := make(chan *loadgen.Report, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		report, err := loadgen.Run(ctx, loadgen.Config{
			Duration:     4 * time.Second,
			PeakRate:     300,
			KVPerRequest: 10,
			Keys:         keys,
			Seed:         2,
		}, loadgen.HandlerFunc(func(ks []string) (time.Duration, int, int, error) {
			res, err := handler.Handle(ks)
			if err != nil {
				inFlightErrs.Add(1)
			}
			return res.RT, res.Hits, res.Misses, err
		}))
		if err != nil {
			t.Errorf("loadgen: %v", err)
		}
		done <- report
	}()

	time.Sleep(time.Second)
	report, err := box.ScaleIn(context.Background(), 1)
	if err != nil {
		t.Fatalf("live scale-in: %v", err)
	}
	if report.ItemsMigrated == 0 {
		t.Fatal("live scale-in migrated nothing")
	}
	load := <-done

	if load.Sent == 0 {
		t.Fatal("no load during the scaling window")
	}
	// Transient connection errors during the membership flip are tolerable
	// (in-flight requests to the dying node), but they must be rare.
	if frac := float64(load.Errors) / float64(load.Sent); frac > 0.05 {
		t.Fatalf("%.1f%% of requests failed across the flip (%d/%d)",
			frac*100, load.Errors, load.Sent)
	}
	if got := len(box.Members()); got != 3 {
		t.Fatalf("members = %d, want 3", got)
	}

	// Post-scale, the hit rate over fresh traffic must be high: the hot
	// set survived the migration.
	hits, misses := 0, 0
	probe, err := loadgen.Run(context.Background(), loadgen.Config{
		Duration:     time.Second,
		PeakRate:     300,
		KVPerRequest: 10,
		Keys:         keys,
		Seed:         3,
	}, loadgen.HandlerFunc(func(ks []string) (time.Duration, int, int, error) {
		res, err := handler.Handle(ks)
		hits += res.Hits
		misses += res.Misses
		return res.RT, res.Hits, res.Misses, err
	}))
	if err != nil {
		t.Fatal(err)
	}
	if probe.Errors != 0 {
		t.Fatalf("post-scale probe errors: %d", probe.Errors)
	}
	hitRate := float64(hits) / float64(hits+misses)
	if hitRate < 0.5 {
		t.Fatalf("post-scale hit rate %.2f — migration failed to preserve the hot set", hitRate)
	}
	t.Logf("full stack: warm %d reqs, %d migrated, post-scale hit rate %.2f over %d reqs",
		warm.Sent, report.ItemsMigrated, hitRate, probe.Sent)
}

func TestFullStackScaleOutUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack run takes a few seconds")
	}
	box, err := cluster.StartLocal(cluster.Config{
		Nodes:      2,
		NodeMemory: 4 * cache.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = box.Close() }()

	dataset, err := store.NewDataset(10_000, store.WithSizeBounds(1, 128))
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.NewDB(dataset, store.LatencyModel{
		Base:     200 * time.Microsecond,
		Capacity: 100_000,
		Max:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler, err := webtier.New(box.Client(), db)
	if err != nil {
		t.Fatal(err)
	}

	// Warm, then scale out, then verify the hit rate held.
	for i := 0; i < 3000; i++ {
		if _, err := handler.Handle([]string{workload.KeyName(uint64(i % 5000))}); err != nil {
			t.Fatal(err)
		}
	}
	report, err := box.ScaleOut(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.ItemsMigrated == 0 {
		t.Fatal("scale-out moved nothing")
	}
	hits, total := 0, 0
	for i := 0; i < 2000; i++ {
		res, err := handler.Handle([]string{workload.KeyName(uint64(i % 2000))})
		if err != nil {
			t.Fatal(err)
		}
		hits += res.Hits
		total++
	}
	if rate := float64(hits) / float64(total); rate < 0.8 {
		t.Fatalf("post-scale-out hit rate %.2f", rate)
	}
	if got := len(box.Members()); got != 3 {
		t.Fatalf("members = %d", got)
	}
}
