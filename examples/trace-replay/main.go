// Trace replay: Figure 2 in miniature. Replays the Facebook ETC demand
// trace through the discrete-event testbed twice — once with the baseline
// (immediate scale, no migration) and once with ElMem — and prints the
// per-second 95%ile response times around the scale-in, plus the
// post-scaling degradation reduction.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, err := trace.Generate(trace.ETC, trace.Options{})
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig(tr)
	cfg.Duration = 4 * time.Minute
	cfg.Warmup = 2 * time.Minute
	cfg.PeakRate = 600
	cfg.Keys = 60_000
	// The DB knee sits between the steady-state miss load (~2% of the KV
	// rate) and the post-scaling miss surge, so the baseline saturates
	// while ElMem stays clear of the knee.
	cfg.DBModel.Capacity = 150
	cfg.MigrationDelay = 15 * time.Second

	fmt.Printf("replaying %s (%v compressed to %v, 10-node tier, ETC 10→9 then 9→10)\n",
		tr.Name, tr.Duration(), cfg.Duration)
	res, err := experiments.RunComparison(cfg, []policy.Kind{policy.Baseline, policy.ElMem})
	if err != nil {
		return err
	}

	baseline, elmem := res.Runs[0], res.Runs[1]
	fmt.Println("\nsec   baseline-hit  baseline-p95     elmem-hit  elmem-p95")
	for i := 0; i < len(baseline.Series) && i < len(elmem.Series); i += 5 {
		b, e := baseline.Series[i], elmem.Series[i]
		if b.Requests == 0 && e.Requests == 0 {
			continue
		}
		fmt.Printf("%4d   %10.3f  %12v  %10.3f  %10v\n",
			int(b.At/time.Second), b.HitRate(), b.P95.Round(time.Microsecond),
			e.HitRate(), e.P95.Round(time.Microsecond))
	}

	for i, a := range baseline.Actions {
		var bd, ed metrics.Degradation
		if i < len(baseline.Degradations) {
			bd = baseline.Degradations[i]
		}
		if i < len(elmem.Degradations) {
			ed = elmem.Degradations[i]
		}
		fmt.Printf("\naction %d (%d→%d at %v):\n", i+1, a.FromNodes, a.ToNodes, a.DecisionAt.Round(time.Second))
		fmt.Printf("  baseline: peak %v, mean P95 %v\n", bd.PeakRT.Round(time.Microsecond), bd.MeanP95.Round(time.Microsecond))
		fmt.Printf("  elmem:    peak %v, mean P95 %v\n", ed.PeakRT.Round(time.Microsecond), ed.MeanP95.Round(time.Microsecond))
		if reductions := res.ReductionPercent[policy.ElMem]; i < len(reductions) {
			fmt.Printf("  post-scaling degradation reduction: %.1f%% (paper headline: ≈90%%)\n", reductions[i])
		}
	}
	return nil
}
