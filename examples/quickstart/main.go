// Quickstart: an in-process 4-node ElMem tier. Populate it through the
// consistent-hashing placement, retire one node with the three-phase
// FuseCache migration, and verify every key survived on its new owner —
// the contrast with a baseline scale-in that loses the retiring node's
// data.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/agent"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hashring"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build four cache nodes with their Agents on the in-process transport.
	reg := agent.NewRegistry()
	members := []string{"node-a", "node-b", "node-c", "node-d"}
	for _, name := range members {
		c, err := cache.New(4 * cache.PageSize)
		if err != nil {
			return err
		}
		a, err := agent.New(name, c, reg)
		if err != nil {
			return err
		}
		reg.Register(a)
	}

	// Place 10,000 keys the way a libmemcached client would.
	ring, err := hashring.New(members)
	if err != nil {
		return err
	}
	const keys = 10_000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("user:%05d", i)
		owner, err := ring.Get(key)
		if err != nil {
			return err
		}
		a, err := reg.Get(owner)
		if err != nil {
			return err
		}
		if err := a.Cache().Set(key, []byte(fmt.Sprintf("profile-%05d", i))); err != nil {
			return err
		}
	}
	for _, name := range members {
		a, _ := reg.Get(name)
		fmt.Printf("%s holds %5d items\n", name, a.Cache().Len())
	}

	// The Master scores the nodes (Section III-C) and retires the coldest
	// with the three-phase migration (Section III-D).
	master, err := core.NewMaster(core.RegistryDirectory{Registry: reg}, members)
	if err != nil {
		return err
	}
	report, err := master.ScaleIn(context.Background(), 1)
	if err != nil {
		return err
	}
	fmt.Printf("\nretired %s, migrated %d items\n", report.Retiring[0], report.ItemsMigrated)
	for _, t := range report.Timings {
		fmt.Printf("  phase %-10s %v\n", t.Phase, t.Duration)
	}

	// Every key must now be resident on its post-scale owner: no cold
	// cache, no post-scaling degradation.
	retained := master.Members()
	newRing, err := hashring.New(retained)
	if err != nil {
		return err
	}
	missing := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("user:%05d", i)
		owner, err := newRing.Get(key)
		if err != nil {
			return err
		}
		a, err := reg.Get(owner)
		if err != nil {
			return err
		}
		if !a.Cache().Contains(key) {
			missing++
		}
	}
	fmt.Printf("\nafter scale-in to %d nodes: %d of %d keys still cached (%d lost)\n",
		len(retained), keys-missing, keys, missing)
	if missing > 0 {
		return fmt.Errorf("lost %d keys — migration failed", missing)
	}
	fmt.Println("a baseline scale-in would have cold-missed every key of the retired node")
	return nil
}
