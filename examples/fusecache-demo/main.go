// FuseCache demo: the paper's core algorithm (Section IV) on its own.
// Builds k MRU-sorted hotness lists, selects the top n with FuseCache and
// with the heap-based k-way merge the paper compares against, verifies
// they pick the same multiset, and times them across an n sweep to show
// the O(k·log²n) vs O(n·log k) separation.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"repro/internal/fusecache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small worked example first.
	lists := []fusecache.List{
		{100, 90, 80, 10},
		{95, 85, 20},
		{99, 50, 30},
	}
	res, err := fusecache.TopN(lists, 5)
	if err != nil {
		return err
	}
	fmt.Println("lists (MRU order, hotter = larger):")
	for i, l := range lists {
		fmt.Printf("  node %d: %v\n", i, l)
	}
	fmt.Printf("top-5 take counts per list: %v (selected %d)\n", res.Take, res.Total)
	threshold, _ := fusecache.Threshold(lists, res)
	fmt.Printf("coldest selected hotness: %d — every unselected item is ≤ it\n\n", threshold)

	// Now the complexity separation: k nodes, each with n items.
	const k = 10
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		big := synthetic(k, n)

		t0 := time.Now()
		fc, err := fusecache.TopN(big, n)
		if err != nil {
			return err
		}
		fcTime := time.Since(t0)

		t0 = time.Now()
		heap, err := fusecache.SelectHeap(big, n)
		if err != nil {
			return err
		}
		heapTime := time.Since(t0)

		if !sameMultiset(big, fc, heap) {
			return fmt.Errorf("n=%d: FuseCache and heap merge disagree", n)
		}
		fmt.Printf("k=%d n=%-9d fusecache %-12v heap-merge %-12v speedup %.0fx\n",
			k, n, fcTime, heapTime, float64(heapTime)/float64(fcTime))
	}
	fmt.Println("\nFuseCache's advantage grows with n: O(k·log²n) vs O(n·log k),")
	fmt.Println("within a log(n) factor of the theoretical lower bound (Section IV-B).")
	return nil
}

func synthetic(k, n int) []fusecache.List {
	rng := rand.New(rand.NewSource(1))
	lists := make([]fusecache.List, k)
	for i := range lists {
		l := make(fusecache.List, n)
		for j := range l {
			l[j] = rng.Int63()
		}
		sort.Slice(l, func(a, b int) bool { return l[a] > l[b] })
		lists[i] = l
	}
	return lists
}

func sameMultiset(lists []fusecache.List, a, b fusecache.Result) bool {
	ma := fusecache.SelectedMultiset(lists, a)
	mb := fusecache.SelectedMultiset(lists, b)
	if len(ma) != len(mb) {
		return false
	}
	for v, c := range ma {
		if mb[v] != c {
			return false
		}
	}
	return true
}
