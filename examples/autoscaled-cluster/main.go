// Autoscaled cluster: the full ElMem loop on live TCP nodes — Q1 (when
// and how much to scale, Eq. 1 + stack distance), Q2 (which node, median
// scoring), and Q3 (three-phase FuseCache migration) — driven by a demand
// pattern that rises and falls. The cluster-in-a-box package wires the
// nodes, Master, and client; the AutoScaler samples live keys and its
// decisions trigger real scale-outs and scale-ins while traffic flows.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/autoscaler"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	box, err := cluster.StartLocal(cluster.Config{
		Nodes:      2,
		NodeMemory: 4 * cache.PageSize,
	})
	if err != nil {
		return err
	}
	defer func() { _ = box.Close() }()
	fmt.Printf("started %d nodes: %v\n", len(box.Members()), box.Members())

	scaler, err := autoscaler.New(autoscaler.Config{
		DBCapacity:   3_000, // r_DB: KV req/s the backing store tolerates
		ItemsPerNode: 5_000,
		MinNodes:     2,
		MaxNodes:     6,
	})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(7))
	gen, err := workload.NewGenerator(rng, 60_000,
		workload.WithZipfS(0.8), workload.WithSizeBounds(1, 128))
	if err != nil {
		return err
	}
	cl := box.Client()

	// Demand epochs: requests per decision period, rising then falling.
	epochs := []struct {
		label   string
		kvCount int
		kvRate  float64 // the rate the AutoScaler is told (KV req/s)
	}{
		{label: "low", kvCount: 20_000, kvRate: 2_000},
		{label: "rising", kvCount: 40_000, kvRate: 6_000},
		{label: "peak", kvCount: 60_000, kvRate: 12_000},
		{label: "falling", kvCount: 30_000, kvRate: 4_000},
		{label: "trough", kvCount: 15_000, kvRate: 1_500},
	}

	for _, epoch := range epochs {
		hits, total := 0, 0
		for i := 0; i < epoch.kvCount; i++ {
			req := gen.Next()
			scaler.Record(req.Key) // Q1's sampling at the web tier
			if _, ok, err := cl.Get(req.Key); err == nil && ok {
				hits++
			} else {
				value := make([]byte, req.ValueSize)
				_ = cl.Set(req.Key, value)
			}
			total++
		}

		decision, err := scaler.Decide(epoch.kvRate, len(box.Members()))
		if err != nil {
			fmt.Printf("epoch %-8s decision error (scaling to max): %v\n", epoch.label, err)
		}
		scaler.Reset()
		fmt.Printf("epoch %-8s hit=%.2f rate=%.0f p_min=%.2f target=%d current=%d\n",
			epoch.label, float64(hits)/float64(total), epoch.kvRate,
			decision.MinHitRate, decision.TargetNodes, len(box.Members()))

		switch delta := decision.TargetNodes - len(box.Members()); {
		case delta > 0:
			report, err := box.ScaleOut(context.Background(), delta)
			if err != nil {
				return err
			}
			fmt.Printf("  scaled OUT +%d (migrated %d items); members now %d\n",
				delta, report.ItemsMigrated, len(box.Members()))
		case delta < 0:
			report, err := box.ScaleIn(context.Background(), -delta)
			if err != nil {
				return err
			}
			fmt.Printf("  scaled IN %d (retired %v, migrated %d items); members now %d\n",
				delta, report.Retiring, report.ItemsMigrated, len(box.Members()))
		default:
			fmt.Println("  holding")
		}
	}
	fmt.Printf("\nfinal tier: %d nodes, %d resident items\n", len(box.Members()), box.TotalItems())
	return nil
}
