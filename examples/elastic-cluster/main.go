// Elastic cluster: a live ElMem deployment on localhost TCP — Memcached
// servers, Agents, a Master, and a consistent-hashing client. A workload
// warms the tier; the Master performs a live scale-in with the three-phase
// migration; the client's membership flips; and the hit rate before and
// after shows the migration preserved the hot set.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/agent"
	"repro/internal/agentrpc"
	"repro/internal/cache"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

type node struct {
	name     string
	cache    *cache.Cache
	server   *server.Server
	agentRPC *agentrpc.Server
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nodes = 4
	book := agentrpc.NewAddressBook()
	defer book.Close()

	// Start nodes: a Memcached TCP server plus an Agent RPC endpoint each.
	var (
		pool    []*node
		members []string // client-facing cache addresses double as names
	)
	defer func() {
		for _, n := range pool {
			_ = n.server.Close()
			_ = n.agentRPC.Close()
		}
	}()
	for i := 0; i < nodes; i++ {
		c, err := cache.New(4 * cache.PageSize)
		if err != nil {
			return err
		}
		srv, err := server.Listen("127.0.0.1:0", c)
		if err != nil {
			return err
		}
		name := srv.Addr()
		ag, err := agent.New(name, c, book)
		if err != nil {
			return err
		}
		rpc, err := agentrpc.Serve("127.0.0.1:0", ag, nil)
		if err != nil {
			return err
		}
		book.Register(name, rpc.Addr())
		pool = append(pool, &node{name: name, cache: c, server: srv, agentRPC: rpc})
		members = append(members, name)
		fmt.Printf("node %d: memcached %s, agent %s\n", i, srv.Addr(), rpc.Addr())
	}

	// A client over the full membership; the Master will flip it on scaling.
	cl, err := client.New(members)
	if err != nil {
		return err
	}
	defer cl.Close()

	master, err := core.NewMaster(agentrpc.Directory{Book: book}, members)
	if err != nil {
		return err
	}
	master.Subscribe(cl)

	// Warm the tier with a Zipf workload through the real client path.
	rng := rand.New(rand.NewSource(42))
	gen, err := workload.NewGenerator(rng, 30_000, workload.WithZipfS(1.1),
		workload.WithSizeBounds(1, 128))
	if err != nil {
		return err
	}
	warm := func(requests int) (hits, total int) {
		for i := 0; i < requests; i++ {
			req := gen.Next()
			if _, ok, err := cl.Get(req.Key); err == nil && ok {
				hits++
			} else {
				value := make([]byte, req.ValueSize)
				_ = cl.Set(req.Key, value)
			}
			total++
		}
		return hits, total
	}
	warm(60_000)
	hits, total := warm(10_000)
	fmt.Printf("\nwarm tier hit rate: %.1f%% over %d requests\n", 100*float64(hits)/float64(total), total)

	// Live scale-in: the Master scores, migrates, flips the client.
	report, err := master.ScaleIn(context.Background(), 1)
	if err != nil {
		return err
	}
	fmt.Printf("scaled in: retired %s, migrated %d items over TCP\n",
		report.Retiring[0], report.ItemsMigrated)
	for _, t := range report.Timings {
		fmt.Printf("  phase %-10s %v\n", t.Phase, t.Duration)
	}

	// The same workload immediately after: the hot set survived.
	hits, total = warm(10_000)
	fmt.Printf("post-scale hit rate: %.1f%% over %d requests (3 nodes)\n",
		100*float64(hits)/float64(total), total)
	fmt.Printf("client membership: %v\n", cl.Members())
	return nil
}
