// Benchmarks regenerating every table and figure of the ElMem paper's
// evaluation (Section V), one benchmark per experiment, plus the ablation
// benches DESIGN.md §5 calls out. cmd/elmem-bench prints the full series;
// these benches measure the cost of regenerating each result and assert
// nothing beyond successful execution (correctness lives in the package
// tests).
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/fusecache"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stackdist"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchComparisonConfig is the scaled-down simulation the figure benches
// replay: small enough that one policy run completes in well under a
// second, large enough that the degradation dynamics appear.
func benchComparisonConfig(b *testing.B, name trace.Name) sim.Config {
	b.Helper()
	tr, err := trace.Generate(name, trace.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig(tr)
	cfg.Duration = 2 * time.Minute
	cfg.Warmup = 90 * time.Second
	cfg.PeakRate = 300
	cfg.Keys = 40_000
	cfg.DBModel.Capacity = 120
	cfg.MigrationDelay = 8 * time.Second
	if name == trace.NLANR {
		cfg.Nodes = 8
	}
	return cfg
}

func runComparisonBench(b *testing.B, name trace.Name, kinds []policy.Kind) {
	b.Helper()
	cfg := benchComparisonConfig(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunComparison(cfg, kinds)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Runs) != len(kinds) {
			b.Fatalf("runs = %d", len(res.Runs))
		}
	}
}

// BenchmarkFig2PostScalingDegradation regenerates Figure 2: baseline vs
// ElMem on the ETC trace's scale-in.
func BenchmarkFig2PostScalingDegradation(b *testing.B) {
	runComparisonBench(b, trace.ETC, []policy.Kind{policy.Baseline, policy.ElMem})
}

// BenchmarkFig5TraceGeneration regenerates the five demand traces.
func BenchmarkFig5TraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6* regenerate the five panels of Figure 6.
func BenchmarkFig6SYS(b *testing.B) {
	runComparisonBench(b, trace.SYS, []policy.Kind{policy.Baseline, policy.ElMem})
}

func BenchmarkFig6ETC(b *testing.B) {
	runComparisonBench(b, trace.ETC, []policy.Kind{policy.Baseline, policy.ElMem})
}

func BenchmarkFig6SAP(b *testing.B) {
	runComparisonBench(b, trace.SAP, []policy.Kind{policy.Baseline, policy.ElMem})
}

func BenchmarkFig6NLANR(b *testing.B) {
	runComparisonBench(b, trace.NLANR, []policy.Kind{policy.Baseline, policy.ElMem})
}

func BenchmarkFig6Microsoft(b *testing.B) {
	runComparisonBench(b, trace.Microsoft, []policy.Kind{policy.Baseline, policy.ElMem})
}

// BenchmarkFig7NodeChoice regenerates the node-choice sweep.
func BenchmarkFig7NodeChoice(b *testing.B) {
	cfg := experiments.NodeChoiceConfig{
		Nodes:     6,
		NodePages: 2,
		Keys:      80_000,
		Accesses:  250_000,
		ZipfS:     0.99,
		Seed:      7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.NodeChoice(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Coldest == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFig8PolicyComparison regenerates the four-policy comparison.
func BenchmarkFig8PolicyComparison(b *testing.B) {
	runComparisonBench(b, trace.SYS, []policy.Kind{
		policy.Baseline, policy.Naive, policy.CacheScale, policy.ElMem,
	})
}

// BenchmarkMigrationPhases regenerates the Section V-B2 overhead breakdown
// on a live localhost-TCP cluster.
func BenchmarkMigrationPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overhead(5, 2_000)
		if err != nil {
			b.Fatal(err)
		}
		if res.ItemsMigrated == 0 {
			b.Fatal("nothing migrated")
		}
	}
}

// FuseCache complexity benches (Section IV-B): FuseCache vs the three
// comparators across the n sweep that shows the O(k·log²n) vs O(n·log k)
// separation.

func fuseCacheInput(b *testing.B, k, n int) []fusecache.List {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	lists := make([]fusecache.List, k)
	for i := range lists {
		l := make(fusecache.List, n)
		for j := range l {
			l[j] = rng.Int63()
		}
		quickSortDesc(l, 0, len(l)-1)
		lists[i] = l
	}
	return lists
}

func quickSortDesc(l fusecache.List, lo, hi int) {
	for lo < hi {
		p := l[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for l[i] > p {
				i++
			}
			for l[j] < p {
				j--
			}
			if i <= j {
				l[i], l[j] = l[j], l[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortDesc(l, lo, j)
			lo = i
		} else {
			quickSortDesc(l, i, hi)
			hi = j
		}
	}
}

func benchSelect(b *testing.B, k, n int, algo func([]fusecache.List, int) (fusecache.Result, error)) {
	b.Helper()
	lists := fuseCacheInput(b, k, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo(lists, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFuseCacheK10N100k(b *testing.B)  { benchSelect(b, 10, 100_000, fusecache.TopN) }
func BenchmarkFuseCacheK10N1M(b *testing.B)    { benchSelect(b, 10, 1_000_000, fusecache.TopN) }
func BenchmarkFuseCacheK100N100k(b *testing.B) { benchSelect(b, 100, 100_000, fusecache.TopN) }

func BenchmarkFuseCacheVsHeapK10N100k(b *testing.B) {
	benchSelect(b, 10, 100_000, fusecache.SelectHeap)
}

func BenchmarkFuseCacheVsHeapK10N1M(b *testing.B) {
	benchSelect(b, 10, 1_000_000, fusecache.SelectHeap)
}

func BenchmarkFuseCacheVsKWayK10N100k(b *testing.B) {
	benchSelect(b, 10, 100_000, fusecache.SelectKWay)
}

func BenchmarkFuseCacheVsMergeSortK10N100k(b *testing.B) {
	benchSelect(b, 10, 100_000, fusecache.SelectMergeSort)
}

// BenchmarkCostModel regenerates the Section II-B cost/energy numbers.
func BenchmarkCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Cost()
		if res.PowerOverheadPercent < 40 {
			b.Fatal("cost model drifted")
		}
	}
}

// BenchmarkElasticityHeadroom regenerates the Section II-C 30–70% node-
// reduction estimate.
func BenchmarkElasticityHeadroom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Headroom(8_000, 500, 4000)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("missing traces")
		}
	}
}

// BenchmarkStackDistanceExactVsMimir compares the exact Mattson profiler
// against the MIMIR approximation on the same stream (Section III-B
// substrate; ablation from DESIGN.md §5).
func BenchmarkStackDistanceExactVsMimir(b *testing.B) {
	keys := make([]string, 200_000)
	rng := rand.New(rand.NewSource(5))
	gen, err := workload.NewGenerator(rng, 50_000, workload.WithZipfS(0.99))
	if err != nil {
		b.Fatal(err)
	}
	for i := range keys {
		keys[i] = gen.Next().Key
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := stackdist.NewProfiler()
			for _, k := range keys {
				p.Record(k)
			}
		}
	})
	b.Run("mimir", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := stackdist.NewMimir(128, 64)
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range keys {
				m.Record(k)
			}
		}
	})
}

// BenchmarkScoringAblation compares weighted (w_b) and unweighted node
// scoring on identical tiers (DESIGN.md §5).
func BenchmarkScoringAblation(b *testing.B) {
	for _, unweighted := range []bool{false, true} {
		name := "weighted"
		if unweighted {
			name = "unweighted"
		}
		b.Run(name, func(b *testing.B) {
			cfg := experiments.NodeChoiceConfig{
				Nodes:      5,
				NodePages:  2,
				Keys:       60_000,
				Accesses:   150_000,
				ZipfS:      0.99,
				Seed:       7,
				Unweighted: unweighted,
			}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.NodeChoice(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetadataVsFullTransfer measures why phase 1 ships only keys and
// timestamps: the metadata of a slab is far smaller than its KV payload
// (Section III-D1; ablation from DESIGN.md §5). Reported as bytes moved
// per item for each strategy.
func BenchmarkMetadataVsFullTransfer(b *testing.B) {
	c, err := cache.New(32 * cache.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const items = 10_000
	for i := 0; i < items; i++ {
		value := make([]byte, rng.Intn(900)+100)
		if err := c.Set(workload.KeyName(uint64(i)), value); err != nil {
			b.Fatal(err)
		}
	}
	classes := c.PopulatedClasses()

	b.Run("metadata-only", func(b *testing.B) {
		var bytesMoved int64
		for i := 0; i < b.N; i++ {
			bytesMoved = 0
			for _, id := range classes {
				metas, err := c.DumpClass(id, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, m := range metas {
					bytesMoved += int64(len(m.Key)) + 10 // key + timestamp
				}
			}
		}
		b.ReportMetric(float64(bytesMoved)/items, "bytes/item")
	})
	b.Run("full-values", func(b *testing.B) {
		var bytesMoved int64
		for i := 0; i < b.N; i++ {
			bytesMoved = 0
			for _, id := range classes {
				kvs, err := c.FetchTop(id, items, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, kv := range kvs {
					bytesMoved += int64(len(kv.Key)) + int64(len(kv.Value)) + 10
				}
			}
		}
		b.ReportMetric(float64(bytesMoved)/items, "bytes/item")
	})
}

// BenchmarkBatchImportVsSet compares the paper's custom batch import
// against the plain set path for writing migrated data (Section III-D3;
// ablation from DESIGN.md §5).
func BenchmarkBatchImportVsSet(b *testing.B) {
	const items = 20_000
	makePairs := func() []cache.KV {
		rng := rand.New(rand.NewSource(3))
		base := time.Unix(1_800_000_000, 0)
		pairs := make([]cache.KV, items)
		for i := range pairs {
			pairs[i] = cache.KV{
				Key:        workload.KeyName(uint64(i)),
				Value:      make([]byte, rng.Intn(100)+20),
				LastAccess: base.Add(time.Duration(items-i) * time.Microsecond),
			}
		}
		return pairs
	}
	pairs := makePairs()

	b.Run("batch-import", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := cache.New(16 * cache.PageSize)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.BatchImport(pairs, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plain-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := cache.New(16 * cache.PageSize)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pairs {
				if err := c.Set(p.Key, p.Value); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkMigrationEndToEnd measures the full in-process three-phase
// migration as item volume scales.
func BenchmarkMigrationEndToEnd(b *testing.B) {
	for _, itemsPerNode := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("items=%d", itemsPerNode), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				reg := agent.NewRegistry()
				var members []string
				for n := 0; n < 4; n++ {
					name := fmt.Sprintf("node-%d", n)
					cc, err := cache.New(8 * cache.PageSize)
					if err != nil {
						b.Fatal(err)
					}
					a, err := agent.New(name, cc, reg)
					if err != nil {
						b.Fatal(err)
					}
					reg.Register(a)
					members = append(members, name)
				}
				for n, name := range members {
					a, _ := reg.Get(name)
					for j := 0; j < itemsPerNode; j++ {
						key := fmt.Sprintf("n%d-key-%06d", n, j)
						if err := a.Cache().Set(key, []byte("value")); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StartTimer()

				retiring := members[0]
				retained := members[1:]
				src, _ := reg.Get(retiring)
				if err := src.SendMetadata(context.Background(), retained); err != nil {
					b.Fatal(err)
				}
				for _, tgt := range retained {
					a, _ := reg.Get(tgt)
					takes, err := a.ComputeTakes(context.Background())
					if err != nil {
						continue
					}
					if _, err := src.SendData(context.Background(), tgt, takes[retiring], retained); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAutoscaleClosedLoop exercises the Eq. (1) + stack-distance
// decision loop end to end.
func BenchmarkAutoscaleClosedLoop(b *testing.B) {
	tr, err := trace.Generate(trace.SYS, trace.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		prof := stackdist.NewProfiler()
		rng := rand.New(rand.NewSource(int64(i)))
		gen, err := workload.NewGenerator(rng, 50_000, workload.WithZipfS(0.99))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100_000; j++ {
			prof.Record(gen.Next().Key)
		}
		curve := prof.Curve()
		for at := time.Duration(0); at < tr.Duration(); at += time.Minute {
			r := tr.RateAt(at) * 4000
			pMin := 1 - 500/r
			if pMin <= 0 {
				continue
			}
			_, _ = curve.ItemsForHitRate(pMin)
		}
	}
}
