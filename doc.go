// Package repro is a from-scratch Go reproduction of "ElMem: Towards an
// Elastic Memcached System" (Hafeez, Wajahat, Gandhi — ICDCS 2018): an
// elastic Memcached tier that mitigates post-scaling performance
// degradation by migrating the optimal subset of hot items between nodes
// before a scaling action, selected by the FuseCache median-of-medians
// algorithm.
//
// The public surface lives under internal/ packages composed by the
// binaries in cmd/ and the runnable examples in examples/; bench_test.go
// regenerates every table and figure of the paper's evaluation. See
// README.md for a walkthrough, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
